"""Quorum replication planning (MCS-style majority quorums).

The runtime can hold several copies of a hot dependent object and keep them
consistent with static majority quorums: a read needs ⌈n/2⌉ agreeing
replicas, a write needs a strict majority (⌊n/2⌋ + 1), so any read quorum
intersects any write quorum and a minority of crashed replicas never loses
data or serves stale values.

This module is the *offline* half of that story: which classes are safe to
replicate at all, where their copies should live, and what availability the
arrangement buys (the binomial model of the MCS exemplar).  The online half
— the REPLICA_NEW / REPLICA_DEP protocol — lives in
:mod:`repro.runtime.services`.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Set, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.model import BProgram

__all__ = [
    "read_quorum",
    "write_quorum",
    "quorum_availability",
    "replication_safe_classes",
    "plan_replication",
    "plan_availability",
]


# ---------------------------------------------------------------- quorum math
def read_quorum(n: int) -> int:
    """⌈n/2⌉ — the smallest set guaranteed to intersect every write
    quorum."""
    return (n + 1) // 2


def write_quorum(n: int) -> int:
    """⌊n/2⌋ + 1 — a strict majority, so two writes always share a
    replica."""
    return n // 2 + 1


def quorum_availability(n: int, p: float, k: int) -> float:
    """Probability that at least ``k`` of ``n`` replicas are up when each is
    independently up with probability ``p`` (the MCS binomial model)."""
    if n <= 0:
        return 0.0
    return sum(
        comb(n, i) * p ** i * (1.0 - p) ** (n - i) for i in range(k, n + 1)
    )


# -------------------------------------------------------------- safety scan
#: instruction families whose presence makes a method unsafe to mirror
_STATE_OPS = frozenset({op.GETSTATIC, op.PUTSTATIC})
_ALLOC_OPS = frozenset({op.NEW, op.NEWARRAY})


def _method_safe(cls_name: str, method) -> bool:
    for ins in method.code:
        if ins.op in _ALLOC_OPS or ins.op in _STATE_OPS:
            return False
        if ins.op in op.INVOKES and ins.a != cls_name:
            # any cross-class call (including Sys printing natives) could
            # touch state the replicas cannot keep in sync
            return False
        if ins.op in (op.GETFIELD, op.PUTFIELD) and ins.a != cls_name:
            return False
    return True


def replication_safe_classes(program: BProgram) -> Set[str]:
    """Classes whose state is fully self-contained: only primitive instance
    fields, no statics, and methods that never allocate, never touch other
    classes' state and never call out of the class.  Mirroring the same
    constructor arguments and the same operation stream on every replica of
    such a class is guaranteed to keep the copies bit-identical."""
    safe: Set[str] = set()
    for name, bc in program.classes.items():
        if name == program.main_class:
            continue
        if bc.static_fields():
            continue
        if any(not f.ty.is_primitive() for f in bc.instance_fields()):
            continue
        if all(_method_safe(name, m) for m in bc.methods.values()):
            safe.add(name)
    return safe


# ----------------------------------------------------------------- planning
def plan_replication(
    plan,
    program: BProgram,
    cluster_size: int,
    factor: int,
) -> Dict[str, Tuple[int, ...]]:
    """Choose replica sets: for every replication-safe dependent class,
    ``factor`` copies led by the class's home partition.  Extra copies
    prefer nodes the distribution plan left idle (they add availability for
    free), then wrap round-robin over the cluster."""
    if factor <= 1 or cluster_size <= 1:
        return {}
    safe = replication_safe_classes(program)
    candidates = sorted(plan.rewritten_classes() & safe)
    if not candidates:
        return {}
    # idle nodes (>= nparts) first, then busy ones, both in id order
    ranked = sorted(range(cluster_size), key=lambda n: (n < plan.nparts, n))
    replicas: Dict[str, Tuple[int, ...]] = {}
    for idx, cls in enumerate(candidates):
        home = plan.class_home.get(cls, plan.main_partition)
        extras = []
        for off in range(cluster_size):
            node = ranked[(idx + off) % cluster_size]
            if node != home and node not in extras:
                extras.append(node)
            if len(extras) >= min(factor, cluster_size) - 1:
                break
        replicas[cls] = (home, *extras)
    return replicas


def plan_availability(
    replicas: Dict[str, Tuple[int, ...]],
    node_up_p: float = 0.9,
) -> float:
    """The availability the replica arrangement buys: the worst (minimum)
    per-class probability that a write quorum is reachable.  With no
    replication every object needs its single home node up, so the figure
    degenerates to ``node_up_p``."""
    if not replicas:
        return node_up_p
    return min(
        quorum_availability(len(rset), node_up_p, write_quorum(len(rset)))
        for rset in replicas.values()
    )
