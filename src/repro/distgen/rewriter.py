"""Bytecode rewriting for communication generation (paper Figures 8 & 9).

Three transformations, applied to every method (code is replicated on all
nodes, so any method may execute anywhere):

* **remote instantiation** (Figure 9) — ``NEW C; DUP; <args>;
  INVOKESPECIAL C.<init>`` of a dependent class becomes ``<args>; PACK n;
  LDC home(C); LDC "C"; INVOKESTATIC DependentObject.create`` — the static
  factory returns a local ``Ref`` when the site's home partition is the
  executing node, or a ``DependentRef`` after a ``NEW`` message otherwise.
  (Deviation from the figure's literal ``new DependentObject``+ctor shape:
  a factory return value replaces in-place construction, because the proxy
  *is* the reference in our VM; DESIGN.md §2 records this.)

* **method invocation** (Figure 8) — ``INVOKEVIRTUAL C.m`` on a dependent
  class becomes ``PACK n; LDC INVOKE_METHOD_*; LDC "m"; INVOKEVIRTUAL
  DependentObject.access`` (+ ``CHECKCAST`` of the return class / ``POP``
  for void).

* **field access** — ``GETFIELD``/``PUTFIELD`` on dependent classes become
  ``FIELD_GET``/``FIELD_SET`` accesses the same way.

A peephole keeps ``this``-receiver accesses direct: an instance method of a
dependent class always executes on its object's home node, so accesses
through ``this`` can never be remote (J-Orchestra applies the same
co-location optimization).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, BProgram, Instr
from repro.errors import CompileError
from repro.lang.symbols import (
    DEPENDENT_OBJECT,
    FIELD_GET,
    FIELD_SET,
    INVOKE_METHOD_HASRETURN,
    INVOKE_METHOD_VOID,
    ClassTable,
)
from repro.lang.types import VOID, ClassType
from repro.distgen.plan import DistributionPlan


class RewriteStats:
    """Counts of each transformation (reported by the Table 2 bench)."""

    def __init__(self) -> None:
        self.instantiations = 0
        self.invocations = 0
        self.field_gets = 0
        self.field_sets = 0
        self.this_peepholes = 0

    @property
    def total(self) -> int:
        return (
            self.instantiations + self.invocations + self.field_gets + self.field_sets
        )


def _expand_rewrite_targets(table: ClassTable, dependent: Set[str]) -> Set[str]:
    """A call through static type D must be rewritten when any subtype of D
    is dependent (the runtime receiver may be the dependent subclass)."""
    out: Set[str] = set()
    for cls in table.classes:
        info = table.classes[cls]
        if info.is_builtin:
            continue
        for dep in dependent:
            try:
                if table.is_subtype(dep, cls):
                    out.add(cls)
                    break
            except Exception:
                continue
    return out & _all_supers_closed(table, dependent)


def _all_supers_closed(table: ClassTable, dependent: Set[str]) -> Set[str]:
    # any class related to a dependent class by subtyping in either direction
    out: Set[str] = set()
    for cls in table.classes:
        if table.classes[cls].is_builtin:
            continue
        for dep in dependent:
            try:
                if table.is_subtype(dep, cls) or table.is_subtype(cls, dep):
                    out.add(cls)
                    break
            except Exception:
                continue
    return out


class _MethodRewriter:
    def __init__(
        self,
        program: BProgram,
        method: BMethod,
        plan: DistributionPlan,
        call_targets: Set[str],
        stats: RewriteStats,
    ) -> None:
        self.program = program
        self.table = program.table
        self.method = method
        self.plan = plan
        self.call_targets = call_targets
        self.stats = stats

    # -- pairing of NEW with its INVOKESPECIAL ------------------------------
    def _pair_allocations(self) -> Dict[int, int]:
        pairs: Dict[int, int] = {}
        pending: List[int] = []
        for idx, ins in enumerate(self.method.code):
            if ins.op == op.NEW:
                pending.append(idx)
            elif ins.op == op.INVOKESPECIAL and ins.b == "<init>":
                if not pending or self.method.code[pending[-1]].a != ins.a:
                    # superclass constructor chain call inside a <init>
                    # prologue: no allocation to pair with
                    continue
                pairs[idx] = pending.pop()
        return pairs

    # -- 'this'-ness tracking -------------------------------------------------
    def _thisness(self) -> List[Optional[List[bool]]]:
        """Forward dataflow over the *flat* code: for each symbolic (non-
        LABEL) instruction index, the abstract operand stack as booleans —
        is this entry provably ``this``?  Merge is element-wise AND.  Static
        methods never push True, so every peephole stays off."""
        flat = self.method.flat()
        n = len(flat)
        states: List[Optional[List[bool]]] = [None] * n
        if n:
            states[0] = []
        work = [0] if n else []
        is_instance = not self.method.is_static

        def transfer(i: int, state: List[bool]) -> Optional[List[bool]]:
            ins = flat[i]
            sim = list(state)
            if ins.op == op.DUP:
                if not sim:
                    return None
                sim.append(sim[-1])
                return sim
            try:
                pops, pushes = _sim_effect(ins, self.table)
            except Exception:
                return None
            if pops > len(sim):
                return None
            if pops:
                del sim[-pops:]
            push_this = ins.op == op.ALOAD and ins.a == 0 and is_instance
            sim.extend([push_this] * pushes)
            return sim

        def merge(a: Optional[List[bool]], b: List[bool]) -> Optional[List[bool]]:
            if a is None:
                return list(b)
            if len(a) != len(b):  # malformed; keep whichever, peepholes off
                return a
            return [x and y for x, y in zip(a, b)]

        iterations = 0
        while work and iterations < 20 * max(n, 1):
            iterations += 1
            i = work.pop()
            state = states[i]
            if state is None:
                continue
            out = transfer(i, state)
            ins = flat[i]
            succs: List[int] = []
            if ins.op == op.GOTO:
                succs = [ins.a]
            elif ins.op in op.CMP_BRANCHES:
                succs = [ins.b, i + 1]
            elif ins.op in op.BOOL_BRANCHES:
                succs = [ins.a, i + 1]
            elif ins.op in op.RETURNS:
                succs = []
            else:
                succs = [i + 1]
            if out is None:
                continue
            for s in succs:
                if not 0 <= s < n:
                    continue
                merged = merge(states[s], out)
                if merged != states[s]:
                    states[s] = merged
                    work.append(s)

        # map back to symbolic indices (LABELs get None)
        out_states: List[Optional[List[bool]]] = []
        flat_idx = 0
        for ins in self.method.code:
            if ins.op == op.LABEL:
                out_states.append(None)
            else:
                out_states.append(states[flat_idx] if flat_idx < n else None)
                flat_idx += 1
        return out_states

    # -- the rewrite ----------------------------------------------------------
    def rewrite(self) -> bool:
        code = self.method.code
        pairs = self._pair_allocations()
        rewritten_news: Set[int] = set()
        for call_idx, new_idx in pairs.items():
            cls = code[new_idx].a
            if cls in self.plan.rewritten_classes():
                rewritten_news.add(new_idx)
        thisness = self._thisness()

        new_code: List[Instr] = []
        skip: Set[int] = set()
        changed = False
        for idx, ins in enumerate(code):
            if idx in skip:
                continue
            if idx in rewritten_news:
                # drop NEW + DUP; the create factory replaces them
                if idx + 1 >= len(code) or code[idx + 1].op != op.DUP:
                    raise CompileError(
                        f"{self.method.qualified}: NEW without DUP at {idx}"
                    )
                skip.add(idx + 1)
                changed = True
                continue
            if (
                ins.op == op.INVOKESPECIAL
                and ins.b == "<init>"
                and pairs.get(idx) in rewritten_news
            ):
                cls = ins.a
                nargs = ins.c
                home = self.plan.home_of_site(self.method.qualified, idx, cls)
                new_code.append(Instr(op.PACK, nargs, line=ins.line))
                new_code.append(Instr(op.LDC, home, "I", line=ins.line))
                new_code.append(Instr(op.LDC, cls, "S", line=ins.line))
                new_code.append(
                    Instr(op.INVOKESTATIC, DEPENDENT_OBJECT, "create", 3, ins.line)
                )
                self.stats.instantiations += 1
                changed = True
                continue
            if ins.op == op.INVOKEVIRTUAL and ins.a in self.call_targets:
                nargs = ins.c
                sim = thisness[idx]
                if sim is not None and len(sim) > nargs and sim[-1 - nargs]:
                    self.stats.this_peepholes += 1
                    new_code.append(ins)
                    continue
                mi = self.table.resolve_method(ins.a, ins.b)
                ret = mi.ret if mi is not None else None
                acc = (
                    INVOKE_METHOD_VOID
                    if ret is VOID
                    else INVOKE_METHOD_HASRETURN
                )
                new_code.append(Instr(op.PACK, nargs, line=ins.line))
                new_code.append(Instr(op.LDC, acc, "I", line=ins.line))
                new_code.append(Instr(op.LDC, ins.b, "S", line=ins.line))
                new_code.append(
                    Instr(op.INVOKEVIRTUAL, DEPENDENT_OBJECT, "access", 3, ins.line)
                )
                if ret is VOID:
                    new_code.append(Instr(op.POP, line=ins.line))
                elif isinstance(ret, ClassType) and ret.name in self.program.classes:
                    new_code.append(Instr(op.CHECKCAST, ret.name, line=ins.line))
                self.stats.invocations += 1
                changed = True
                continue
            if ins.op in (op.GETFIELD, op.PUTFIELD) and ins.a in self.call_targets:
                is_put = ins.op == op.PUTFIELD
                npops = 2 if is_put else 1
                sim = thisness[idx]
                recv_pos = -npops
                if sim is not None and len(sim) >= npops and sim[recv_pos]:
                    self.stats.this_peepholes += 1
                    new_code.append(ins)
                    continue
                fi = self.table.resolve_field(ins.a, ins.b)
                if is_put:
                    new_code.append(Instr(op.PACK, 1, line=ins.line))
                    new_code.append(Instr(op.LDC, FIELD_SET, "I", line=ins.line))
                    self.stats.field_sets += 1
                else:
                    new_code.append(Instr(op.PACK, 0, line=ins.line))
                    new_code.append(Instr(op.LDC, FIELD_GET, "I", line=ins.line))
                    self.stats.field_gets += 1
                new_code.append(Instr(op.LDC, ins.b, "S", line=ins.line))
                new_code.append(
                    Instr(op.INVOKEVIRTUAL, DEPENDENT_OBJECT, "access", 3, ins.line)
                )
                if is_put:
                    new_code.append(Instr(op.POP, line=ins.line))
                elif fi is not None and isinstance(fi.ty, ClassType) and (
                    fi.ty.name in self.program.classes
                ):
                    new_code.append(Instr(op.CHECKCAST, fi.ty.name, line=ins.line))
                changed = True
                continue
            new_code.append(ins)
        if changed:
            self.method.code = new_code
            self.method.invalidate()
        return changed


def _sim_effect(ins: Instr, table: ClassTable) -> Tuple[int, int]:
    from repro.quad.builder import stack_effect

    return stack_effect(ins, table)


def rewrite_program(
    program: BProgram, plan: DistributionPlan
) -> Tuple[BProgram, RewriteStats]:
    """Return a rewritten **copy** of ``program`` for ``plan`` (the original
    stays intact for the centralized baseline), plus transformation stats."""
    stats = RewriteStats()
    out = program.copy()
    if plan.nparts <= 1 or not plan.rewritten_classes():
        return out, stats
    call_targets = _expand_rewrite_targets(out.table, plan.rewritten_classes())
    for bclass in out.classes.values():
        for method in bclass.methods.values():
            _MethodRewriter(out, method, plan, call_targets, stats).rewrite()
    return out, stats
