"""Local vs dependent classification (paper §4).

"Local objects have no dependences on objects in different address spaces.
Thus, they are treated as normal objects and no communication is generated
for those.  Dependent objects have dependences across address spaces and
thus, messages are inserted to resolve these dependences."

Classification happens at class granularity for rewriting purposes (the
rewriter operates on bytecode, which names classes): a class is *dependent*
when any dependence edge touching one of its objects (or class parts)
crosses partitions under the given assignment.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.analysis.class_relations import ClassRelationGraph
from repro.analysis.odg import ObjectDependenceGraph


def _class_of_part(part: str) -> str:
    # "ST_Foo"/"DT_Foo" -> "Foo"
    return part.split("_", 1)[1]


def classify_dependent_crg(
    crg: ClassRelationGraph, part_of: Dict[str, int]
) -> Set[str]:
    """Dependent classes under a CRG-node -> partition assignment."""
    dependent: Set[str] = set()
    for e in crg.edges():
        if e.kind not in ("use", "export", "import", "create"):
            continue
        src_p = part_of.get(e.src)
        dst_p = part_of.get(e.dst)
        if src_p is None or dst_p is None or src_p == dst_p:
            continue
        dependent.add(_class_of_part(e.src))
        dependent.add(_class_of_part(e.dst))
    return dependent


def classify_dependent_odg(
    odg: ObjectDependenceGraph, part_of: Dict[str, int]
) -> Set[str]:
    """Dependent classes under an ODG-object -> partition assignment."""
    cls_of = {obj.uid: obj.class_name for obj in odg.objects}
    dependent: Set[str] = set()
    for e in odg.edges():
        if e.kind == "reference":
            continue  # redundant relation (paper: "we can safely abandon it")
        src_p = part_of.get(e.src)
        dst_p = part_of.get(e.dst)
        if src_p is None or dst_p is None or src_p == dst_p:
            continue
        if e.src in cls_of:
            dependent.add(cls_of[e.src])
        if e.dst in cls_of:
            dependent.add(cls_of[e.dst])
    return dependent


def classify_dependent(graph, part_of: Dict[str, int]) -> Set[str]:
    """Dispatch on graph flavor."""
    if isinstance(graph, ObjectDependenceGraph):
        return classify_dependent_odg(graph, part_of)
    return classify_dependent_crg(graph, part_of)
