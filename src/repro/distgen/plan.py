"""Distribution plans: the offline output of analysis + partitioning.

"To generate communication, we generate partitions off-line for 1, 2, ...
nodes.  This is a form of off-line rather than runtime specialization."
(paper §4.2) — :func:`build_plans` produces exactly that sequence.

A plan fixes, for a given node count: the home partition of every class
(class granularity — what the paper's evaluation uses: "currently we use the
class relation graph partitioning to distribute the program") or of every
allocation site (object granularity over the ODG), the dependent-class set,
and where ``main`` starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.class_relations import build_crg
from repro.analysis.object_set import compute_object_set
from repro.analysis.odg import build_odg
from repro.analysis.resources import ResourceModel, UNIFORM
from repro.analysis.rta import rapid_type_analysis
from repro.bytecode.model import BProgram
from repro.distgen.classify import classify_dependent_crg, classify_dependent_odg
from repro.errors import AnalysisError
from repro.partition.api import part_graph


@dataclass
class DistributionPlan:
    """Everything the rewriter and the runtime need for one node count."""

    nparts: int
    granularity: str                      # 'class' | 'object'
    class_home: Dict[str, int]           # class -> partition
    site_home: Dict[Tuple[str, int], int] = field(default_factory=dict)
    dependent_classes: Set[str] = field(default_factory=set)
    main_partition: int = 0
    edgecut: float = 0.0
    method: str = "multilevel"
    #: the chosen placement vector over ``order`` (the dependence-graph
    #: node names) — lets adaptive repartitioning seed the next plan with
    #: this plan as a baseline candidate
    parts: Optional[List[int]] = None
    order: Optional[List[str]] = None
    #: the static makespan estimate the placement was chosen by
    est_cost: float = 0.0
    #: estimated cost of the first ``extra_candidates`` placement under
    #: *this* plan's weights — what adaptive repartitioning reports as the
    #: baseline prediction without re-running the analysis
    baseline_cost: Optional[float] = None

    def home_of_site(self, method_q: str, index: int, class_name: str) -> int:
        if self.granularity == "object":
            home = self.site_home.get((method_q, index))
            if home is not None:
                return home
        return self.class_home.get(class_name, self.main_partition)

    def rewritten_classes(self) -> Set[str]:
        """Classes whose allocations/accesses the rewriter must transform."""
        if self.nparts <= 1:
            return set()
        return set(self.dependent_classes)


#: estimated communication cycles per static dependence-volume unit on a
#: cut edge (latency-dominated small messages; calibrated against the
#: simulated 100 Mb Ethernet and the static loop-frequency scale)
COMM_CYCLES_PER_VOLUME = 20.0


def estimate_plan_cost(
    graph,
    parts: List[int],
    nparts: int,
    tpwgts: Optional[List[float]],
) -> float:
    """Static makespan estimate for a candidate placement of a *sequential*
    program: every piece of work runs serially on its home node, so the
    estimate is Σ cpu(node i)/relative_speed(home(i)) plus a communication
    charge for every dependence edge crossing the cut.  This is the cost
    model that lets offline specialization pick between balance-tight and
    balance-loose partitions (paper §1: "study their interaction")."""
    if tpwgts is None:
        rel = [1.0] * nparts
    else:
        top = max(tpwgts)
        rel = [max(t, 1e-9) / top for t in tpwgts]
    vw = graph.vwgts()
    cpu = 0.0
    for i in range(graph.num_nodes):
        cpu += float(vw[i].sum()) / rel[parts[i]]
    comm = 0.0
    for u, v, w in graph.edges():
        if parts[u] != parts[v]:
            comm += w * COMM_CYCLES_PER_VOLUME
    return cpu + comm


def _weighted_use_graph(crg, program: BProgram,
                        measured_cpu: Optional[Dict[str, float]]):
    """The CRG use graph with CPU vertex weights: measured cycles when a
    profile is available (adaptive repartitioning input), the static
    loop-scaled heuristic otherwise.  One definition, shared by
    :func:`build_plan` and :func:`placement_cost` so candidate placements
    are always compared on the same weighted graph."""
    from repro.analysis.resources import _class_cpu

    graph, order = crg.use_graph()
    for i, node in enumerate(order):
        cls = node.split("_", 1)[1]
        if measured_cpu is not None and cls in measured_cpu:
            graph.set_weight(i, [max(measured_cpu[cls], 1.0)])
        else:
            graph.set_weight(i, [max(_class_cpu(cls, program), 1.0)])
    return graph, order


def _edgecut_of(graph, parts: List[int]) -> float:
    return float(sum(
        w for u, v, w in graph.edges() if parts[u] != parts[v]
    ))


def placement_cost(
    program: BProgram,
    parts: List[int],
    nparts: int,
    tpwgts: Optional[List[float]] = None,
    measured_cpu: Optional[Dict[str, float]] = None,
) -> float:
    """Static makespan estimate of an explicit class-granularity placement
    (a ``DistributionPlan.parts`` vector) under the given — possibly
    measured — weights.  Lets callers compare two plans' predictions on an
    equal footing (see :mod:`repro.adaptive`)."""
    cg = rapid_type_analysis(program)
    crg = build_crg(cg)
    graph, order = _weighted_use_graph(crg, program, measured_cpu)
    if len(parts) != graph.num_nodes:
        raise AnalysisError(
            f"placement names {len(parts)} nodes, graph has {graph.num_nodes}"
        )
    return estimate_plan_cost(graph, list(parts), nparts, tpwgts)


def build_plan(
    program: BProgram,
    nparts: int,
    granularity: str = "class",
    method: str = "multilevel",
    model: Optional[ResourceModel] = None,
    seed: int = 17,
    tpwgts: Optional[List[float]] = None,
    ubfactor: float = 1.30,
    pin_main_to: Optional[int] = None,
    force_distribution: bool = False,
    measured_cpu: Optional[Dict[str, float]] = None,
    extra_candidates: Optional[List[List[int]]] = None,
) -> DistributionPlan:
    """Analyze ``program`` and produce a distribution plan for ``nparts``.

    ``tpwgts`` gives target capacity fractions per partition (e.g. relative
    CPU speeds of the actual machines — the paper's resource-availability
    modeling); CPU-heuristic node weights make the balance constraint mean
    *compute* balance, not class-count balance.

    ``extra_candidates`` (class granularity only) adds explicit placement
    vectors to the candidate pool — e.g. a previous plan's ``parts`` — so a
    replan under new weights can never pick something it predicts to be
    worse than that baseline."""
    if granularity not in ("class", "object"):
        raise AnalysisError(f"unknown granularity {granularity!r}")
    cg = rapid_type_analysis(program)
    crg = build_crg(cg)
    main_cls = program.main_class

    if granularity == "class" or nparts == 1:
        graph, order = _weighted_use_graph(crg, program, measured_cpu)

        main_node = f"ST_{main_cls}"

        def pinned_parts(parts: List[int]) -> List[int]:
            if pin_main_to is None:
                return list(parts)
            out = list(parts)
            for i, node in enumerate(order):
                if node == main_node:
                    out[i] = pin_main_to
            return out

        # The placement objective for a *sequential* program is a makespan
        # estimate, not balance: try several balance tolerances and keep
        # the candidate with the lowest estimated cost (CPU on assigned
        # node speeds + communication across the cut).
        best = None
        candidates = []
        for ub in (1.05, 1.3, 2.0, ubfactor, 2 * ubfactor):
            res = part_graph(
                graph, nparts, method=method, seed=seed, tpwgts=tpwgts,
                ubfactor=ub,
            )
            candidates.append((pinned_parts(res.parts), res.edgecut))
        if nparts > 1 and not force_distribution:
            # degenerate candidate: everything co-located with main — the
            # right answer for chatty programs ("many programs may not need
            # distribution at all", §1)
            home = pin_main_to if pin_main_to is not None else 0
            candidates.append(([home] * graph.num_nodes, 0.0))
        baseline_cost = None
        for extra in extra_candidates or ():
            if len(extra) != graph.num_nodes:
                continue  # stale baseline from a different program shape
            parts = pinned_parts(list(extra))
            candidates.append((parts, _edgecut_of(graph, parts)))
            if baseline_cost is None:
                baseline_cost = estimate_plan_cost(graph, parts, nparts, tpwgts)
        for parts, cut in candidates:
            if force_distribution and len(set(parts)) < min(nparts, 2):
                continue  # collapsed after pinning; not a real distribution
            cost = estimate_plan_cost(graph, parts, nparts, tpwgts)
            if best is None or cost < best[0]:
                best = (cost, parts, cut)
        if best is None:
            # every candidate collapsed; fall back to isolating the heaviest
            # non-main node on partition (pin+1) % nparts
            vw = graph.vwgts()
            fallback = pinned_parts([0] * graph.num_nodes)
            movable = [
                i for i, node in enumerate(order) if node != main_node
            ]
            if movable and nparts > 1:
                heavy = max(movable, key=lambda i: float(vw[i].sum()))
                home = fallback[heavy]
                fallback[heavy] = (home + 1) % nparts
            best = (
                estimate_plan_cost(graph, fallback, nparts, tpwgts),
                fallback,
                _edgecut_of(graph, fallback),
            )
        cost, parts, edgecut = best
        part_of = {node: parts[i] for i, node in enumerate(order)}
        class_home: Dict[str, int] = {}
        for node, p in part_of.items():
            kind, cls = node.split("_", 1)
            if kind == "DT" or cls not in class_home:
                class_home[cls] = p
        dependent = classify_dependent_crg(crg, part_of)
        main_partition = part_of.get(f"ST_{main_cls}", 0)
        plan = DistributionPlan(
            nparts=nparts,
            granularity="class",
            class_home=class_home,
            dependent_classes=dependent if nparts > 1 else set(),
            main_partition=main_partition,
            edgecut=edgecut,
            method=method,
            parts=list(parts),
            order=list(order),
            est_cost=cost,
            baseline_cost=baseline_cost,
        )
        return plan

    objects = compute_object_set(cg)
    odg = build_odg(cg, crg, objects)
    graph, order = odg.partition_graph()
    if model is None:
        model = UNIFORM
    objects_by_uid = {o.uid: o for o in objects}
    graph = model.apply(graph, objects_by_uid, program)
    result = part_graph(
        graph, nparts, method=method, seed=seed, tpwgts=tpwgts, ubfactor=ubfactor
    )
    part_of = {uid: result.parts[i] for i, uid in enumerate(order)}
    if pin_main_to is not None and f"ST_{main_cls}" in part_of:
        part_of[f"ST_{main_cls}"] = pin_main_to
    site_home: Dict[Tuple[str, int], int] = {}
    class_home: Dict[str, int] = {}
    for obj in objects:
        p = part_of.get(obj.uid, 0)
        if obj.static_part:
            class_home.setdefault(obj.class_name, p)
        else:
            site_home[obj.site] = p
            class_home.setdefault(obj.class_name, p)
    dependent = classify_dependent_odg(odg, part_of)
    main_partition = part_of.get(f"ST_{main_cls}", 0)
    return DistributionPlan(
        nparts=nparts,
        granularity="object",
        class_home=class_home,
        site_home=site_home,
        dependent_classes=dependent if nparts > 1 else set(),
        main_partition=main_partition,
        edgecut=result.edgecut,
        method=method,
    )


def build_plans(
    program: BProgram,
    max_nodes: int,
    granularity: str = "class",
    method: str = "multilevel",
    seed: int = 17,
) -> List[DistributionPlan]:
    """Offline specialization: plans for 1, 2, ..., ``max_nodes`` nodes."""
    return [
        build_plan(program, n, granularity=granularity, method=method, seed=seed)
        for n in range(1, max_nodes + 1)
    ]
