"""Communication generation (paper §4.2): classify objects as local vs
dependent, build distribution plans for 1..n nodes offline, and rewrite
bytecode so remote dependences go through ``DependentObject`` accesses
(Figures 8 and 9 of the paper)."""

from repro.distgen.classify import classify_dependent
from repro.distgen.plan import DistributionPlan, build_plan, build_plans
from repro.distgen.rewriter import rewrite_program

__all__ = [
    "classify_dependent",
    "DistributionPlan",
    "build_plan",
    "build_plans",
    "rewrite_program",
]
