"""Rapid Type Analysis (RTA) call-graph construction.

The paper (§2.1): "We use rapid type analysis (RTA) to compute the call graph
and the program types."  RTA maintains the set of *instantiated* classes
(from ``NEW`` in reachable code) and resolves virtual calls only against
instantiated subtypes of the static receiver class, iterating with a
worklist until no new methods or types appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, BProgram
from repro.errors import AnalysisError
from repro.lang.symbols import DEPENDENT_OBJECT


@dataclass
class CallGraph:
    """RTA result: reachable methods, instantiated types, call edges.

    ``edges`` maps a caller to the set of (callee, callsite-index) pairs;
    ``callers`` is the inverse without site info.  Methods are identified by
    their qualified ``Class.name`` string.
    """

    program: BProgram
    reachable: Set[str] = field(default_factory=set)
    instantiated: Set[str] = field(default_factory=set)
    edges: Dict[str, Set[Tuple[str, int]]] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)

    def method(self, qualified: str) -> BMethod:
        cls, name = qualified.rsplit(".", 1)
        m = self.program.classes[cls].methods[name]
        return m

    def reachable_methods(self) -> List[BMethod]:
        out = []
        for q in sorted(self.reachable):
            cls, name = q.rsplit(".", 1)
            bc = self.program.classes.get(cls)
            if bc is not None and name in bc.methods:
                out.append(bc.methods[name])
        return out

    def callees(self, qualified: str) -> Set[str]:
        return {callee for callee, _ in self.edges.get(qualified, set())}

    def call_sites_of(self, qualified: str) -> Set[Tuple[str, int]]:
        """All (caller, index) sites that may invoke ``qualified``."""
        sites: Set[Tuple[str, int]] = set()
        for caller, outs in self.edges.items():
            for callee, idx in outs:
                if callee == qualified:
                    sites.add((caller, idx))
        return sites


def _resolve_virtual_targets(
    program: BProgram, instantiated: Set[str], static_cls: str, name: str
) -> Set[str]:
    """User-class targets of a virtual call: for every instantiated class T
    that is a subtype of the static receiver class, the implementation T
    actually inherits."""
    table = program.table
    targets: Set[str] = set()
    for t in instantiated:
        if t not in program.classes:
            continue
        try:
            if not table.is_subtype(t, static_cls):
                continue
        except Exception:
            continue
        m = program.lookup_method(t, name)
        if m is not None:
            targets.add(m.qualified)
    return targets


def rapid_type_analysis(
    program: BProgram, entry: Optional[str] = None
) -> CallGraph:
    """Run RTA from ``entry`` (default: the program's ``main``)."""
    if entry is None:
        if program.main_class is None:
            raise AnalysisError("program has no main method and no entry given")
        entry = f"{program.main_class}.main"

    cg = CallGraph(program)
    work: List[str] = []

    def reach(qualified: str) -> None:
        if qualified not in cg.reachable:
            cg.reachable.add(qualified)
            work.append(qualified)

    reach(entry)
    for bclass in program.classes.values():
        if "<clinit>" in bclass.methods:
            reach(f"{bclass.name}.<clinit>")

    # deferred virtual sites: (caller, index, static_cls, name) re-checked
    # whenever a new class becomes instantiated
    virtual_sites: List[Tuple[str, int, str, str]] = []

    def add_edge(caller: str, callee: str, index: int) -> None:
        cg.edges.setdefault(caller, set()).add((callee, index))
        cg.callers.setdefault(callee, set()).add(caller)
        reach(callee)

    processed_sites: Set[Tuple[str, int, str]] = set()

    while work:
        qualified = work.pop()
        cls, name = qualified.rsplit(".", 1)
        bclass = program.classes.get(cls)
        if bclass is None or name not in bclass.methods:
            continue  # built-in: no bytecode to scan
        method = bclass.methods[name]
        new_types: List[str] = []
        for idx, ins in enumerate(method.flat()):
            if ins.op == op.NEW:
                if ins.a not in cg.instantiated:
                    cg.instantiated.add(ins.a)
                    new_types.append(ins.a)
            elif ins.op == op.INVOKESTATIC:
                if ins.a == DEPENDENT_OBJECT:
                    continue
                callee = program.lookup_method(ins.a, ins.b)
                if callee is not None:
                    add_edge(qualified, callee.qualified, idx)
            elif ins.op == op.INVOKESPECIAL:
                callee = program.lookup_method(ins.a, ins.b)
                if callee is not None:
                    add_edge(qualified, callee.qualified, idx)
            elif ins.op == op.INVOKEVIRTUAL:
                if ins.a == DEPENDENT_OBJECT:
                    continue
                virtual_sites.append((qualified, idx, ins.a, ins.b))
        # (re)resolve virtual sites — new methods and new types both matter
        for caller, idx, static_cls, mname in virtual_sites:
            key = (caller, idx, static_cls)
            for target in _resolve_virtual_targets(
                program, cg.instantiated, static_cls, mname
            ):
                add_edge(caller, target, idx)
            processed_sites.add(key)
        if new_types:
            # new instantiated types can turn previously-unresolvable
            # virtual sites into edges; the loop above already re-scans all
            # sites each iteration, so nothing more to do
            pass
    return cg
