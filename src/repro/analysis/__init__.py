"""Static analysis framework (paper §2): RTA call graph, class relation
graph (CRG), object set, object dependence graph (ODG), resource model."""

from repro.analysis.rta import CallGraph, rapid_type_analysis
from repro.analysis.class_relations import ClassRelationGraph, build_crg
from repro.analysis.object_set import AllocationSite, ObjectNode, compute_object_set
from repro.analysis.odg import ObjectDependenceGraph, build_odg
from repro.analysis.resources import ResourceModel, UNIFORM, STATIC_HEURISTIC

__all__ = [
    "CallGraph",
    "rapid_type_analysis",
    "ClassRelationGraph",
    "build_crg",
    "AllocationSite",
    "ObjectNode",
    "compute_object_set",
    "ObjectDependenceGraph",
    "build_odg",
    "ResourceModel",
    "UNIFORM",
    "STATIC_HEURISTIC",
]
