"""Class Relation Graph construction (paper §2, Figure 3).

Nodes are the static (``ST_C``) and dynamic (``DT_C``) halves of each
reachable user class.  Scanning every reachable method's bytecode yields:

* **use** edges — method calls, field accesses and allocation statements
  from the scanning part to the target part;
* **export** edges — a reference type *E* may propagate from the caller to
  the callee through a parameter (or a field write): labeled with *E*;
* **import** edges — a reference type *E* may propagate back through a
  return value (or a field read): labeled with *E*.

Edge byte volumes estimate the dependence data a cross-partition placement
would transfer (argument/return/field widths), which later becomes the edge
weight for partitioning (§3).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.relgraph import RelGraph
from repro.analysis.rta import CallGraph
from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, BProgram
from repro.lang.symbols import RUNTIME_CLASSES, ClassTable, DEPENDENT_OBJECT
from repro.lang.types import ArrayType, ClassType, Type, elem_width


def part_node(cls: str, is_static_part: bool) -> str:
    return f"{'ST' if is_static_part else 'DT'}_{cls}"


def _ref_class_of(ty: Type, table: ClassTable) -> Optional[str]:
    """User-class name carried by ``ty`` (unwrapping arrays), or None."""
    while isinstance(ty, ArrayType):
        ty = ty.elem
    if isinstance(ty, ClassType) and ty.name not in RUNTIME_CLASSES:
        if table.has(ty.name) and not table.get(ty.name).is_builtin:
            return ty.name
    return None


def _width_of(ty: Type) -> float:
    return float(elem_width(ty))


class ClassRelationGraph(RelGraph):
    """The CRG; nodes are ``ST_C`` / ``DT_C`` strings."""

    def use_graph(self):
        """Undirected use-relation graph for partitioning ("TRG")."""
        return self.to_weighted_graph(kinds=("use", "export", "import"))


def _is_user(program: BProgram, cls: str) -> bool:
    return cls in program.classes


def build_crg(cg: CallGraph) -> ClassRelationGraph:
    program = cg.program
    table = program.table
    crg = ClassRelationGraph()

    def src_part(method: BMethod) -> str:
        return part_node(method.class_name, method.is_static)

    # ensure every reachable class part is present
    for method in cg.reachable_methods():
        crg.add_node(src_part(method))

    from repro.analysis.loops import frequency_factor, loop_depth_per_index

    for method in cg.reachable_methods():
        src = src_part(method)
        depths = loop_depth_per_index(method)
        for idx, ins in enumerate(method.flat()):
            o = ins.op
            # access statements in loops execute more often; scale the
            # dependence-data volume by the static frequency estimate
            # (paper §3's heuristic weighting)
            freq = frequency_factor(depths[idx])
            if o == op.NEW:
                if ins.a == DEPENDENT_OBJECT or not _is_user(program, ins.a):
                    continue
                crg.add_edge(
                    src, part_node(ins.a, False), "use", count=1, volume=8.0 * freq
                )
            elif o in op.INVOKES:
                cls, name = ins.a, ins.b
                if cls == DEPENDENT_OBJECT or not _is_user(program, cls):
                    continue
                mi = table.resolve_method(cls, name)
                if mi is None:
                    continue
                dst = part_node(cls, o == op.INVOKESTATIC and not mi.is_ctor)
                vol = 8.0 + sum(_width_of(t) for _, t in mi.params)
                vol += _width_of(mi.ret) if mi.ret.is_reference() or mi.ret.is_primitive() else 0.0
                crg.add_edge(src, dst, "use", count=1, volume=vol * freq)
                # export: reference-typed parameters can flow src -> dst
                for _, pty in mi.params:
                    ref = _ref_class_of(pty, table)
                    if ref is not None:
                        crg.add_edge(src, dst, "export", label=ref)
                # import: reference-typed returns can flow dst -> src
                ref = _ref_class_of(mi.ret, table)
                if ref is not None:
                    crg.add_edge(src, dst, "import", label=ref)
            elif o in (op.GETFIELD, op.PUTFIELD, op.GETSTATIC, op.PUTSTATIC):
                cls, fname = ins.a, ins.b
                if not _is_user(program, cls):
                    continue
                fi = table.resolve_field(cls, fname)
                if fi is None:
                    continue
                dst = part_node(cls, o in (op.GETSTATIC, op.PUTSTATIC))
                if dst == src:
                    # accesses within the same class part are local by
                    # construction; they still appear as (cheap) self-uses
                    # in the paper's graphs, which RelGraph drops on
                    # conversion — record for completeness
                    pass
                crg.add_edge(src, dst, "use", count=1, volume=_width_of(fi.ty) * freq)
                ref = _ref_class_of(fi.ty, table)
                if ref is not None:
                    kind = "export" if o in (op.PUTFIELD, op.PUTSTATIC) else "import"
                    crg.add_edge(src, dst, kind, label=ref)
    return crg
