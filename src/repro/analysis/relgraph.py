"""A small directed relation graph shared by the CRG and the ODG.

Edges carry a *kind* (use / export / import / create / reference), an
optional type label, a statement count and a byte-volume estimate; parallel
edges of the same kind merge by accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.wgraph import WeightedGraph


@dataclass
class RelEdge:
    src: Hashable
    dst: Hashable
    kind: str
    label: Optional[str] = None
    count: int = 1
    volume: float = 0.0  # estimated bytes of dependence data

    def key(self) -> Tuple:
        return (self.src, self.dst, self.kind, self.label)


class RelGraph:
    """Directed graph over hashable node ids with kinded, merged edges."""

    def __init__(self) -> None:
        self.nodes: Dict[Hashable, str] = {}   # id -> display label
        self._edges: Dict[Tuple, RelEdge] = {}

    def add_node(self, node: Hashable, label: Optional[str] = None) -> None:
        if node not in self.nodes:
            self.nodes[node] = label if label is not None else str(node)

    def add_edge(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        label: Optional[str] = None,
        count: int = 1,
        volume: float = 0.0,
    ) -> None:
        self.add_node(src)
        self.add_node(dst)
        edge = RelEdge(src, dst, kind, label, count, volume)
        existing = self._edges.get(edge.key())
        if existing is None:
            self._edges[edge.key()] = edge
        else:
            existing.count += count
            existing.volume += volume

    def edges(self, kind: Optional[str] = None) -> List[RelEdge]:
        if kind is None:
            return list(self._edges.values())
        return [e for e in self._edges.values() if e.kind == kind]

    def has_edge(self, src, dst, kind: str, label: Optional[str] = None) -> bool:
        if label is not None:
            return (src, dst, kind, label) in self._edges
        return any(
            k[0] == src and k[1] == dst and k[2] == kind for k in self._edges
        )

    def out_edges(self, src, kind: Optional[str] = None) -> List[RelEdge]:
        return [
            e
            for e in self._edges.values()
            if e.src == src and (kind is None or e.kind == kind)
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def to_weighted_graph(
        self,
        kinds: Iterable[str] = ("use",),
        weight_from: str = "volume",
    ) -> Tuple[WeightedGraph, List[Hashable]]:
        """Collapse to an undirected :class:`WeightedGraph` over the same
        node set, merging edge directions.  ``weight_from`` selects edge
        weight: 'volume' (bytes, min 1) or 'count'."""
        order = sorted(self.nodes, key=str)
        g = WeightedGraph(1)
        for node in order:
            g.add_node(node)
        wanted = set(kinds)
        for e in self._edges.values():
            if e.kind not in wanted or e.src == e.dst:
                continue
            w = e.volume if weight_from == "volume" else float(e.count)
            g.add_edge(g.index_of(e.src), g.index_of(e.dst), max(w, 1.0))
        return g, order

    def to_vcg(self, title: str) -> str:
        from repro.graph.vcg import vcg_digraph

        return vcg_digraph(
            title,
            [(n, lbl) for n, lbl in sorted(self.nodes.items(), key=lambda kv: str(kv[0]))],
            [(e.src, e.dst, e.kind) for e in self._edges.values()],
        )
