"""Object Dependence Graph construction (paper §2, Figure 4).

Starting from *create* edges (allocation site → allocating context), object
references are propagated against the class relation graph's export/import
relations — Spiegel's algorithm as extended by the paper's technical report:

* ``a`` refs ``b`` and ``a`` refs ``c``, CRG has ``part(a) --export[E]-->
  part(b)`` and ``class(c) <: E``  ⇒  ``b`` refs ``c``;
* ``a`` refs ``b`` and ``b`` refs ``c``, CRG has ``part(a) --import[E]-->
  part(b)`` and ``class(c) <: E``  ⇒  ``a`` refs ``c``;

iterated over all object triples to a fix point.  Finally each reference
pair whose parts are related by a *use* edge yields a weighted **use** edge —
the only relation that matters for partitioning ("after the propagation,
only the usage relation should matter"; the reference relation is kept for
inspection but marked redundant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.class_relations import ClassRelationGraph, part_node
from repro.analysis.object_set import ObjectNode
from repro.analysis.relgraph import RelGraph
from repro.analysis.rta import CallGraph
from repro.graph.wgraph import WeightedGraph


class ObjectDependenceGraph(RelGraph):
    """The ODG; node ids are :attr:`ObjectNode.uid` strings."""

    def __init__(self) -> None:
        super().__init__()
        self.objects: List[ObjectNode] = []

    def object_by_uid(self, uid: str) -> ObjectNode:
        for obj in self.objects:
            if obj.uid == uid:
                return obj
        raise KeyError(uid)

    def partition_graph(self, weight_from: str = "volume") -> Tuple[WeightedGraph, List[str]]:
        """Undirected use+create graph for the partitioner."""
        return self.to_weighted_graph(kinds=("use", "create"), weight_from=weight_from)


def _part_of(obj: ObjectNode) -> str:
    return part_node(obj.class_name, obj.static_part)


def build_odg(
    cg: CallGraph,
    crg: ClassRelationGraph,
    objects: List[ObjectNode],
    max_iterations: int = 64,
) -> ObjectDependenceGraph:
    program = cg.program
    table = program.table
    odg = ObjectDependenceGraph()
    odg.objects = list(objects)
    n = len(objects)
    for obj in objects:
        odg.add_node(obj.uid, obj.label)

    idx_of: Dict[str, int] = {obj.uid: i for i, obj in enumerate(objects)}
    by_class: Dict[str, List[int]] = {}
    for i, obj in enumerate(objects):
        by_class.setdefault(obj.class_name, []).append(i)

    def subtype(sub: str, sup: str) -> bool:
        try:
            return table.is_subtype(sub, sup)
        except Exception:
            return sub == sup

    # ---- create edges: site -> executed-in context objects
    refs: Set[Tuple[int, int]] = set()
    creates: Set[Tuple[int, int]] = set()
    for i, obj in enumerate(objects):
        if obj.static_part:
            continue
        method_q, _ = obj.site
        cls, mname = method_q.rsplit(".", 1)
        method = program.classes[cls].methods[mname]
        creators: List[int] = []
        if method.is_static:
            uid = f"ST_{cls}"
            if uid in idx_of:
                creators.append(idx_of[uid])
        else:
            # any object whose runtime class inherits this method
            for j, other in enumerate(objects):
                if other.static_part or j == i:
                    continue
                if (
                    subtype(other.class_name, cls)
                    and other.class_name in program.classes
                ):
                    impl = program.lookup_method(other.class_name, mname)
                    if impl is not None and impl.qualified == method_q:
                        creators.append(j)
        for c in creators:
            creates.add((c, i))
            refs.add((c, i))

    # ---- propagation to fix point
    export_edges = [
        (e.src, e.dst, e.label) for e in crg.edges("export") if e.label
    ]
    import_edges = [
        (e.src, e.dst, e.label) for e in crg.edges("import") if e.label
    ]
    part_cache = [_part_of(obj) for obj in objects]

    for _ in range(max_iterations):
        new_refs: Set[Tuple[int, int]] = set()
        refs_from: Dict[int, List[int]] = {}
        for a, b in refs:
            refs_from.setdefault(a, []).append(b)
        for a, bs in refs_from.items():
            pa = part_cache[a]
            a_exports = [(d, lbl) for s, d, lbl in export_edges if s == pa]
            a_imports = [(d, lbl) for s, d, lbl in import_edges if s == pa]
            for b in bs:
                pb = part_cache[b]
                # export: a gives c to b
                for dst_part, label in a_exports:
                    if dst_part != pb:
                        continue
                    for c in bs:
                        if c == b:
                            continue
                        if subtype(objects[c].class_name, label):
                            pair = (b, c)
                            if pair not in refs:
                                new_refs.add(pair)
                # import: a obtains c from b
                for dst_part, label in a_imports:
                    if dst_part != pb:
                        continue
                    for c in refs_from.get(b, []):
                        if c == a:
                            continue
                        if subtype(objects[c].class_name, label):
                            pair = (a, c)
                            if pair not in refs:
                                new_refs.add(pair)
        if not new_refs:
            break
        refs |= new_refs

    # ---- derive edges
    use_by_parts: Dict[Tuple[str, str], Tuple[int, float]] = {}
    for e in crg.edges("use"):
        key = (e.src, e.dst)
        cnt, vol = use_by_parts.get(key, (0, 0.0))
        use_by_parts[key] = (cnt + e.count, vol + e.volume)

    for c, i in sorted(creates):
        odg.add_edge(objects[c].uid, objects[i].uid, "create", count=1, volume=8.0)
    for a, b in sorted(refs):
        if (a, b) in creates:
            continue
        odg.add_edge(objects[a].uid, objects[b].uid, "reference")
    for a, b in sorted(refs):
        key = (part_cache[a], part_cache[b])
        if key in use_by_parts:
            cnt, vol = use_by_parts[key]
            odg.add_edge(
                objects[a].uid, objects[b].uid, "use", count=cnt, volume=vol
            )
    return odg
