"""Resource modeling for the object dependence graph (paper §3).

"Each object in the graph encapsulates data and computation...  The weight of
a node is a vector that contains memory, CPU, and battery usage for the
creation and usage of an object.  The weight of an edge is the amount of
data that needs to be transferred due to a dependence."

Three models are provided:

* ``UNIFORM``          — all objects weigh (1,1,1): the paper's current state
  ("static approximations can be imprecise under the assumption that all
  objects have equal weights");
* ``STATIC_HEURISTIC`` — the paper's stated future heuristic: summary (``*``)
  objects created inside loops are *heavier*; memory from the field layout,
  CPU from the bytecode cost of the class's methods;
* ``profiled``         — weights taken from a profiler report
  (:func:`from_profile`), the feedback loop the paper's adaptive
  repartitioning needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.object_set import ObjectNode
from repro.bytecode import opcodes as op
from repro.bytecode.model import BProgram
from repro.graph.wgraph import WeightedGraph

#: weight multiplier for '*' summary objects in the heuristic model
SUMMARY_FACTOR = 10.0

NCON = 3  # (memory, cpu, battery)


class ResourceModel:
    """Assigns (memory, cpu, battery) vectors to ODG objects."""

    def __init__(self, name: str, fn) -> None:
        self.name = name
        self._fn = fn

    def weights_for(self, obj: ObjectNode, program: BProgram) -> List[float]:
        return self._fn(obj, program)

    def apply(
        self, graph: WeightedGraph, objects_by_uid: Dict[str, ObjectNode], program: BProgram
    ) -> WeightedGraph:
        """Return a copy of ``graph`` with NCON-dim vertex weights set from
        this model (graph labels must be object uids)."""
        out = WeightedGraph(NCON)
        for label in graph.labels:
            obj = objects_by_uid.get(label)
            weights = (
                self.weights_for(obj, program) if obj is not None else [1.0] * NCON
            )
            out.add_node(label, weights)
        for u, v, w in graph.edges():
            out.add_edge(u, v, w)
        # battery additionally charges for communication: add incident edge
        # volume to the third component
        vw = out.vwgts()
        for u in range(out.num_nodes):
            battery = vw[u][2] + 0.1 * out.degree(u)
            out.set_weight(u, [vw[u][0], vw[u][1], battery])
        return out


def _uniform(obj: ObjectNode, program: BProgram) -> List[float]:
    return [1.0, 1.0, 1.0]


def _object_memory(obj: ObjectNode, program: BProgram) -> float:
    cls = obj.class_name
    if cls in program.classes:
        nfields = 0
        cur: Optional[str] = cls
        while cur is not None and cur in program.classes:
            nfields += len(program.classes[cur].instance_fields())
            cur = program.classes[cur].superclass
        return 16.0 + 8.0 * nfields
    return 32.0  # built-in container


def _class_cpu(cls: str, program: BProgram) -> float:
    """Static CPU estimate for a class: bytecode cost of its methods with
    loop-nesting frequency scaling (instructions in loops count more)."""
    from repro.analysis.loops import frequency_factor, loop_depth_per_index

    if cls not in program.classes:
        return 16.0
    total = 0.0
    for method in program.classes[cls].methods.values():
        depths = loop_depth_per_index(method)
        for idx, ins in enumerate(method.flat()):
            total += op.cost_of(ins.op) * frequency_factor(depths[idx])
    return total


def _heuristic(obj: ObjectNode, program: BProgram) -> List[float]:
    factor = SUMMARY_FACTOR if obj.summary else 1.0
    mem = _object_memory(obj, program) * factor
    cpu = _class_cpu(obj.class_name, program) * factor
    battery = 0.05 * cpu
    return [mem, cpu, battery]


UNIFORM = ResourceModel("uniform", _uniform)
STATIC_HEURISTIC = ResourceModel("static-heuristic", _heuristic)


def from_profile(per_class_cycles: Dict[str, float], per_class_bytes: Dict[str, float]) -> ResourceModel:
    """Build a resource model from measured profiler data — the input the
    paper's future adaptive repartitioning would use."""

    def fn(obj: ObjectNode, program: BProgram) -> List[float]:
        cpu = per_class_cycles.get(obj.class_name, 1.0)
        mem = per_class_bytes.get(obj.class_name, _object_memory(obj, program))
        return [max(mem, 1.0), max(cpu, 1.0), 0.05 * max(cpu, 1.0)]

    return ResourceModel("profiled", fn)
