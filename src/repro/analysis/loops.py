"""Loop-nesting estimation on bytecode.

``loop_depth_per_index`` counts, per flat instruction index, how many
backward-branch spans cover it — a sound nesting-depth estimate for the
structured code MJ's compiler emits.  The CRG scaler uses it to weight
access statements by execution-frequency estimates (paper §3: static
heuristics in lieu of profile data), and the object-set analysis uses the
same spans for ``*`` summary detection."""

from __future__ import annotations

from typing import List

from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod


def loop_depth_per_index(method: BMethod) -> List[int]:
    flat = method.flat()
    depth = [0] * len(flat)
    for j, ins in enumerate(flat):
        if ins.op in op.BRANCHES:
            target = ins.b if ins.op in op.CMP_BRANCHES else ins.a
            if target <= j:
                for i in range(target, j + 1):
                    depth[i] += 1
    return depth


#: execution-frequency multiplier per loop-nesting level (capped)
LOOP_SCALE = 8.0
MAX_SCALED_DEPTH = 3


def frequency_factor(depth: int) -> float:
    return LOOP_SCALE ** min(depth, MAX_SCALED_DEPTH)
