"""Object set computation (paper §2, Figure 4).

An *object* is an abstract instance: one per allocation site, plus one
pseudo-object per reachable static class part.  A site is a **summary
instance** (``*`` prefix, "zero or more") when it can execute more than once:
it sits inside a loop of its method, or its method itself may run multiple
times (called from a loop, from several sites, or recursively); otherwise it
is a **single instance** (``1`` prefix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.rta import CallGraph
from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod
from repro.lang.symbols import DEPENDENT_OBJECT


@dataclass(frozen=True)
class AllocationSite:
    method: str       # qualified Class.name
    index: int        # flat bytecode index of the NEW
    class_name: str   # allocated class

    def __str__(self) -> str:
        return f"{self.method}@{self.index}:{self.class_name}"


@dataclass(frozen=True)
class ObjectNode:
    """An abstract object: an allocation site or a static class part."""

    site: Tuple[str, int]     # (method, index); index -1 for static parts
    class_name: str
    summary: bool             # '*' vs '1'
    static_part: bool = False

    @property
    def label(self) -> str:
        prefix = "*" if self.summary else "1"
        part = "ST" if self.static_part else "DT"
        return f"{prefix}{part}_{self.class_name}"

    @property
    def uid(self) -> str:
        if self.static_part:
            return f"ST_{self.class_name}"
        return f"{self.site[0]}@{self.site[1]}:{self.class_name}"

    def __str__(self) -> str:  # pragma: no cover
        return self.label


def _indices_in_loops(method: BMethod) -> Set[int]:
    """Flat indices covered by some backward branch span — a sound
    approximation of natural-loop membership for structured MJ bytecode."""
    flat = method.flat()
    spans: List[Tuple[int, int]] = []
    for j, ins in enumerate(flat):
        if ins.op in op.BRANCHES:
            target = ins.b if ins.op in op.CMP_BRANCHES else ins.a
            if target <= j:
                spans.append((target, j))
    covered: Set[int] = set()
    for lo, hi in spans:
        covered.update(range(lo, hi + 1))
    return covered


def _multi_executed_methods(cg: CallGraph) -> Set[str]:
    """Methods that may execute more than once in a program run."""
    multi: Set[str] = set()
    # seed: called from a loop, from >= 2 sites, or recursive
    for callee in cg.reachable:
        sites = cg.call_sites_of(callee)
        if len(sites) >= 2:
            multi.add(callee)
            continue
        for caller, idx in sites:
            caller_m = _lookup(cg, caller)
            if caller_m is not None and idx in _indices_in_loops(caller_m):
                multi.add(callee)
                break
        if callee in multi:
            continue
        # recursion: callee reaches itself in the call graph
        if _reaches(cg, callee, callee):
            multi.add(callee)
    # propagate: anything called (transitively) from a multi method is multi
    changed = True
    while changed:
        changed = False
        for caller in list(multi):
            for callee in cg.callees(caller):
                if callee not in multi:
                    multi.add(callee)
                    changed = True
    return multi


def _lookup(cg: CallGraph, qualified: str):
    cls, name = qualified.rsplit(".", 1)
    bc = cg.program.classes.get(cls)
    if bc is None:
        return None
    return bc.methods.get(name)


def _reaches(cg: CallGraph, start: str, goal: str) -> bool:
    seen: Set[str] = set()
    work = [c for c in cg.callees(start)]
    while work:
        cur = work.pop()
        if cur == goal:
            return True
        if cur in seen:
            continue
        seen.add(cur)
        work.extend(cg.callees(cur))
    return False


def compute_object_set(cg: CallGraph) -> List[ObjectNode]:
    """All abstract objects of the program, in deterministic order."""
    program = cg.program
    multi = _multi_executed_methods(cg)
    objects: List[ObjectNode] = []
    static_parts: Set[str] = set()

    for method in cg.reachable_methods():
        if method.is_static:
            static_parts.add(method.class_name)
        loops = _indices_in_loops(method)
        for idx, ins in enumerate(method.flat()):
            if ins.op != op.NEW:
                continue
            cls = ins.a
            if cls == DEPENDENT_OBJECT:
                continue
            is_user = cls in program.classes
            # built-in containers (Vector...) are objects too (Figure 4
            # includes the Vector instance); static-only builtins never
            # reach here because they cannot be instantiated
            summary = method.qualified in multi or idx in loops
            objects.append(
                ObjectNode(
                    site=(method.qualified, idx),
                    class_name=cls,
                    summary=summary,
                )
            )
            del is_user
    for cls in sorted(static_parts):
        objects.append(
            ObjectNode(site=(cls, -1), class_name=cls, summary=False, static_part=True)
        )
    objects.sort(key=lambda o: o.uid)
    return objects
