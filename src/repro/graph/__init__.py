"""Weighted-graph substrate: the data structure the partitioner consumes,
plus VCG export (the aiSee format used for the paper's Figures 3 and 4) and
partition-quality metrics."""

from repro.graph.metrics import edgecut, imbalance
from repro.graph.vcg import vcg_digraph, vcg_graph
from repro.graph.wgraph import WeightedGraph

__all__ = ["WeightedGraph", "edgecut", "imbalance", "vcg_graph", "vcg_digraph"]
