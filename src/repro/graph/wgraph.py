"""Undirected vertex- and edge-weighted graph with vector vertex weights.

This is the input format of the partitioner (the Metis stand-in): vertex
weights are ``ncon``-dimensional vectors — the paper models (memory, CPU,
battery) resource vectors per object — and edge weights are scalar
communication volumes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError


class WeightedGraph:
    """Adjacency-map graph; nodes are dense indices with optional labels."""

    def __init__(self, ncon: int = 1) -> None:
        if ncon < 1:
            raise PartitionError("ncon must be >= 1")
        self.ncon = ncon
        self._vwgts: List[Sequence[float]] = []
        self.labels: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self.adj: List[Dict[int, float]] = []

    # ------------------------------------------------------------------ build
    def add_node(
        self, label: Optional[Hashable] = None, weights: Optional[Sequence[float]] = None
    ) -> int:
        idx = len(self.adj)
        if label is None:
            label = idx
        if label in self._index:
            raise PartitionError(f"duplicate node label {label!r}")
        if weights is None:
            weights = [1.0] * self.ncon
        if len(weights) != self.ncon:
            raise PartitionError(
                f"node weight vector has {len(weights)} entries, expected {self.ncon}"
            )
        self._index[label] = idx
        self.labels.append(label)
        self._vwgts.append(list(weights))
        self.adj.append({})
        return idx

    def index_of(self, label: Hashable) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise PartitionError(f"unknown node {label!r}") from None

    def has_node(self, label: Hashable) -> bool:
        return label in self._index

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge u—v."""
        n = len(self.adj)
        if not (0 <= u < n and 0 <= v < n):
            raise PartitionError(f"edge ({u},{v}) out of range")
        if u == v:
            return  # self loops carry no cut contribution
        self.adj[u][v] = self.adj[u].get(v, 0.0) + weight
        self.adj[v][u] = self.adj[v].get(u, 0.0) + weight

    def set_weight(self, u: int, weights: Sequence[float]) -> None:
        if len(weights) != self.ncon:
            raise PartitionError("bad weight vector length")
        self._vwgts[u] = list(weights)

    # ------------------------------------------------------------------ views
    @property
    def num_nodes(self) -> int:
        return len(self.adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.adj) // 2

    def vwgts(self) -> np.ndarray:
        """(n, ncon) float array of vertex weights."""
        if not self._vwgts:
            return np.zeros((0, self.ncon))
        return np.asarray(self._vwgts, dtype=float)

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        for u, nbrs in enumerate(self.adj):
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def degree(self, u: int) -> float:
        return sum(self.adj[u].values())

    def total_weight(self) -> np.ndarray:
        return self.vwgts().sum(axis=0)

    def neighbors(self, u: int) -> Dict[int, float]:
        return self.adj[u]

    # ------------------------------------------------------------------ misc
    def subgraph(self, nodes: Sequence[int]) -> Tuple["WeightedGraph", List[int]]:
        """Induced subgraph; returns (graph, mapping new->old index)."""
        remap = {old: new for new, old in enumerate(nodes)}
        sub = WeightedGraph(self.ncon)
        for old in nodes:
            sub.add_node(self.labels[old], self._vwgts[old])
        for old in nodes:
            for v, w in self.adj[old].items():
                if v in remap and old < v:
                    sub.add_edge(remap[old], remap[v], w)
        return sub, list(nodes)

    def to_networkx(self):
        """Export to networkx (used by tests for cross-validation)."""
        import networkx as nx

        g = nx.Graph()
        for i, label in enumerate(self.labels):
            g.add_node(i, label=label, weight=self._vwgts[i])
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int, float]],
        vwgts: Optional[Sequence[Sequence[float]]] = None,
        ncon: int = 1,
    ) -> "WeightedGraph":
        g = cls(ncon)
        for i in range(n):
            g.add_node(i, list(vwgts[i]) if vwgts is not None else None)
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WeightedGraph n={self.num_nodes} m={self.num_edges} ncon={self.ncon}>"
