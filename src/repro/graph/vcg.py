"""VCG (Visualising Compiler Graphs) export.

The paper renders the class relation graph (Figure 3) and the object
dependence graph (Figure 4) with the aiSee tool, which consumes the VCG text
format.  These helpers produce the same format so the reproduced graphs can
be viewed with any VCG-capable tool.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

from repro.graph.wgraph import WeightedGraph

_EDGE_COLORS = {
    "use": "blue",
    "export": "red",
    "import": "green",
    "create": "darkgreen",
    "reference": "black",
}


def _esc(text: str) -> str:
    return str(text).replace('"', "'")


def vcg_digraph(
    title: str,
    nodes: Iterable[Tuple[Hashable, str]],
    edges: Iterable[Tuple[Hashable, Hashable, str]],
) -> str:
    """Render a labeled digraph: nodes are (id, label); edges are
    (src, dst, relation-label)."""
    lines = [
        "graph: {",
        f'  title: "{_esc(title)}"',
        "  layoutalgorithm: minbackward",
        "  display_edge_labels: yes",
    ]
    for nid, label in nodes:
        lines.append(f'  node: {{ title: "{_esc(nid)}" label: "{_esc(label)}" }}')
    for src, dst, rel in edges:
        color = _EDGE_COLORS.get(rel, "black")
        lines.append(
            f'  edge: {{ sourcename: "{_esc(src)}" targetname: "{_esc(dst)}"'
            f' label: "{_esc(rel)}" color: {color} }}'
        )
    lines.append("}")
    return "\n".join(lines)


def vcg_graph(
    graph: WeightedGraph,
    title: str = "graph",
    parts: Optional[Sequence[int]] = None,
) -> str:
    """Render a :class:`WeightedGraph`; when a partition vector is given the
    partition number is appended to each label in square brackets, matching
    the annotation style of the paper's Figure 4."""
    lines = [
        "graph: {",
        f'  title: "{_esc(title)}"',
        "  layoutalgorithm: forcedir",
    ]
    for i, label in enumerate(graph.labels):
        text = str(label)
        if parts is not None:
            text += f" [{parts[i]}]"
        lines.append(f'  node: {{ title: "n{i}" label: "{_esc(text)}" }}')
    for u, v, w in graph.edges():
        lines.append(
            f'  edge: {{ sourcename: "n{u}" targetname: "n{v}" label: "{w:g}" }}'
        )
    lines.append("}")
    return "\n".join(lines)
