"""Partition quality metrics: edgecut and per-constraint imbalance."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.graph.wgraph import WeightedGraph


def edgecut(graph: WeightedGraph, parts: Sequence[int]) -> float:
    """Total weight of edges straddling partitions (the paper's 'EC')."""
    if len(parts) != graph.num_nodes:
        raise PartitionError("parts vector length mismatch")
    cut = 0.0
    for u, v, w in graph.edges():
        if parts[u] != parts[v]:
            cut += w
    return cut


def part_weights(graph: WeightedGraph, parts: Sequence[int], nparts: int) -> np.ndarray:
    """(nparts, ncon) matrix of per-partition weight sums."""
    vw = graph.vwgts()
    out = np.zeros((nparts, graph.ncon))
    for i, p in enumerate(parts):
        if not 0 <= p < nparts:
            raise PartitionError(f"node {i} assigned to invalid part {p}")
        out[p] += vw[i]
    return out


def imbalance(graph: WeightedGraph, parts: Sequence[int], nparts: int) -> np.ndarray:
    """Per-constraint load imbalance: ``max_p w(p,c) / (total(c)/nparts)``.

    1.0 means perfectly balanced; Metis' conventional tolerance is ~1.03 for
    one constraint and looser for several.
    """
    weights = part_weights(graph, parts, nparts)
    totals = weights.sum(axis=0)
    ideal = np.where(totals > 0, totals / nparts, 1.0)
    return weights.max(axis=0) / ideal


def is_balanced(
    graph: WeightedGraph, parts: Sequence[int], nparts: int, ubvec: Sequence[float]
) -> bool:
    return bool(np.all(imbalance(graph, parts, nparts) <= np.asarray(ubvec)))
