"""The differential conformance oracle.

The paper's central claim is an *equivalence*: distributing a sequential
program changes where code runs and what it costs, never what it computes.
This module checks that claim mechanically for arbitrary generated
scenarios, on two axes:

* **VM engines** — the threaded-code fast path and the per-step reference
  interpreter must agree on cycles, steps, result, stdout and fault text
  for every program (:func:`observe_vm` / the ``vm.*`` checks);
* **Execution modes** — for every runtime backend a scenario's world names
  (``sim``, ``thread``, ``process``), the distributed run must reproduce the
  centralized baseline's stdout byte-for-byte and its result exactly, with
  sane per-node statistics (the ``dist.*`` checks); on the deterministic
  simulator, deep mode additionally asserts that fast- and reference-path
  cluster executions are byte-identical down to NodeStats floats
  (``sim.determinism``).

Every distributed check runs through :class:`repro.api.Experiment` — a
generated program is registered as a transient workload and flows through
the same typed configs, registries, stage cache and event plumbing as any
hand-written experiment (:func:`temp_workload`).

When a check fails, :func:`run_fuzz` minimizes the offending program with
:func:`repro.testing.genprog.shrink_program` and packages a replayable
:class:`CounterExample` whose corpus entry reproduces the divergence from
source alone — no generator state needed.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.testing.genprog import GenConfig, ProgramSpec, generate_program
from repro.testing.genworld import WorldSpec, generate_world
from repro.testing.seeds import derive_seed

__all__ = [
    "Divergence",
    "Scenario",
    "ConformanceOutcome",
    "CounterExample",
    "ConformanceReport",
    "temp_workload",
    "observe_vm",
    "check_scenario",
    "check_experiment",
    "minimize_scenario",
    "run_fuzz",
]


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class Divergence:
    """One failed conformance check."""

    check: str      # e.g. "vm.cycles", "dist.stdout[thread]"
    message: str
    expected: Any = None
    actual: Any = None

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "message": self.message,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
        }


@dataclass
class Scenario:
    """One conformance scenario: a program plus the world it runs in."""

    name: str
    source: str
    world: WorldSpec
    #: structured form, present for generated programs (enables shrinking)
    spec: Optional[ProgramSpec] = None
    gen_seed: Optional[int] = None

    def vm_only(self) -> bool:
        return not self.world.backends


@dataclass
class ConformanceOutcome:
    """What the oracle observed for one scenario."""

    name: str
    checks_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: the program faults under sequential execution (distributed checks
    #: are skipped; the fault itself is differentially checked)
    faulted: bool = False
    #: reference-path observables — the golden trace corpus entries store
    reference: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "checks_run": self.checks_run,
            "faulted": self.faulted,
            "divergences": [d.to_dict() for d in self.divergences],
        }


@dataclass
class CounterExample:
    """A minimized, replayable conformance failure."""

    name: str
    world: Dict[str, Any]
    source: str
    divergences: List[Divergence]
    gen_seed: Optional[int] = None
    gen_config: Optional[Dict[str, Any]] = None
    original_statements: int = 0
    minimized_statements: int = 0
    shrink_evals: int = 0
    #: reference observables of the minimized program (golden for replay)
    reference: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "world": self.world,
            "source": self.source,
            "divergences": [d.to_dict() for d in self.divergences],
            "gen_seed": self.gen_seed,
            "gen_config": self.gen_config,
            "original_statements": self.original_statements,
            "minimized_statements": self.minimized_statements,
            "shrink_evals": self.shrink_evals,
            "reference": self.reference,
        }

    def summary(self) -> str:
        checks = ", ".join(sorted({d.check for d in self.divergences}))
        return (
            f"{self.name}: {checks} "
            f"(shrunk {self.original_statements} -> "
            f"{self.minimized_statements} statements)"
        )


@dataclass
class ConformanceReport:
    """The outcome of one fuzzing or replay session."""

    seed: int
    budget: int
    scenarios: int = 0
    checks: int = 0
    faulted: int = 0
    failures: List[CounterExample] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "scenarios": self.scenarios,
            "checks": self.checks,
            "faulted": self.faulted,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.scenarios} scenarios, "
            f"{self.checks} checks, {self.faulted} faulting programs, "
            f"{len(self.failures)} failures in {self.elapsed_s:.1f}s"
        ]
        for f in self.failures:
            lines.append(f"  FAIL {f.summary()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# transient workloads: generated programs through the real plumbing
# ---------------------------------------------------------------------------
_counter = itertools.count()


@contextlib.contextmanager
def temp_workload(source: str, name: Optional[str] = None) -> Iterator[str]:
    """Register MJ ``source`` as a workload for the duration of the block,
    so it is addressable by every registry-driven layer (configs,
    Experiment, stage cache), then unregister it."""
    from repro.workloads import WORKLOADS, Workload

    wname = name or f"_fuzz{next(_counter)}"
    WORKLOADS.register(
        wname,
        Workload(wname, "generated", lambda size, _src=source: _src,
                 "transient fuzz scenario"),
    )
    try:
        yield wname
    finally:
        WORKLOADS.unregister(wname)


# ---------------------------------------------------------------------------
# observations
# ---------------------------------------------------------------------------
def observe_vm(
    loaded, slow: bool = False, engine: Optional[str] = None
) -> Dict[str, Any]:
    """One full sequential run on the chosen engine; faults are recorded,
    not raised (their text is part of the observation).  ``engine`` names
    an execution tier explicitly ("reference", "fast", "compiled");
    ``slow=True`` is the legacy spelling of ``engine="reference"``."""
    from repro.errors import VMError
    from repro.vm.interpreter import Machine, forced_engine, run_sync

    if engine is None:
        engine = "reference" if slow else "fast"
    machine = Machine(loaded)
    machine.statics = loaded.fresh_statics()
    machine.call_bmethod(loaded.main_method(), None, [None])
    error = None
    with forced_engine(engine):
        try:
            run_sync(machine)
        except VMError as exc:
            error = str(exc)
    return {
        "cycles": machine.cycles,
        "steps": machine.steps,
        "result": machine.result,
        "stdout": list(machine.stdout),
        "error": error,
    }


def _compare_vm(
    actual: Dict[str, Any], ref: Dict[str, Any], prefix: str = "vm",
    label: str = "fast path",
) -> List[Divergence]:
    divs = []
    for key in ("error", "stdout", "result", "cycles", "steps"):
        if actual[key] != ref[key]:
            divs.append(
                Divergence(
                    f"{prefix}.{key}",
                    f"{label} diverged from the per-step oracle on {key}",
                    expected=ref[key],
                    actual=actual[key],
                )
            )
    return divs


def _vm_differential(outcome: ConformanceOutcome, loaded) -> bool:
    """The engine-equivalence half of every check: observe all three VM
    tiers against the per-step reference, record divergences and the
    reference observation on ``outcome``.  Returns True when the program
    faults (distributed checks don't apply)."""
    fast = observe_vm(loaded, engine="fast")
    compiled = observe_vm(loaded, engine="compiled")
    ref = observe_vm(loaded, engine="reference")
    outcome.checks_run += 10
    outcome.divergences.extend(_compare_vm(fast, ref))
    outcome.divergences.extend(
        _compare_vm(compiled, ref, prefix="vm.compiled",
                    label="compiled tier")
    )
    outcome.reference = ref
    if ref["error"] is not None:
        outcome.faulted = True
        return True
    return False


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------
def _check_backend(exp, backend: str, deep: bool) -> Tuple[List[Divergence], int]:
    """Distributed-vs-baseline checks for one Experiment (one backend).

    Fault-bearing worlds weaken the contract in exactly one way: a world
    whose :class:`~repro.runtime.faults.FaultPlan` plans crashes or
    partitions (``not transient_only``) may *degrade* — then the run must
    still return (never hang or raise), must carry structured fault
    evidence, and must report stats for every node, but its outputs are
    not comparable to the baseline.  Transient-only plans (drop /
    duplication / delay) are maskable by retry, so every equality check
    stays in force for them — and for replicated worlds, crash or not,
    whenever the run completes undegraded."""
    divs: List[Divergence] = []
    checks = 0
    plan_faults = exp.config.cluster.faults
    rec_plan = exp.config.cluster.recovery
    recovering = rec_plan is not None and rec_plan.enabled
    crashy = plan_faults is not None and not plan_faults.transient_only
    try:
        res = exp.run()
    except ReproError as exc:
        return (
            [Divergence(f"exp.crash[{backend}]",
                        f"{type(exc).__name__}: {exc}")],
            1,
        )
    if crashy and res.distributed.degraded:
        checks += 1
        if not res.distributed.faults:
            divs.append(
                Divergence(
                    f"dist.faults[{backend}]",
                    "degraded run must carry structured fault records",
                    actual=res.distributed.faults,
                )
            )
        checks += 1
        cluster = exp.cluster()
        stats = res.distributed.node_stats
        if len(stats) != cluster.size:
            divs.append(
                Divergence(
                    f"dist.nodestats[{backend}]",
                    f"degraded run must still report {cluster.size} node stats",
                    expected=cluster.size,
                    actual=len(stats),
                )
            )
        if recovering:
            # the recovery contract: a run may only degrade when something
            # genuinely unmaskable happened (the main node itself died, a
            # replay had to be aborted, the network gave out).  If every
            # fault on record is a maskable crash of a non-main node with
            # no abort evidence, the recovery tier silently failed.
            checks += 1
            main_node = exp.plan().main_partition
            records = res.distributed.faults
            maskable = {"crash", "worker_lost", "lease_expired"}
            silent_failure = bool(records) and all(
                f.kind in maskable and f.node != main_node for f in records
            )
            if silent_failure:
                divs.append(
                    Divergence(
                        f"recovery.masked[{backend}]",
                        "every fault was a maskable non-main crash yet the "
                        "run degraded without abort evidence — the recovery "
                        "tier should have masked them",
                        actual=[(f.node, f.kind) for f in records],
                    )
                )
        return divs, checks
    if recovering:
        # an undegraded run that absorbed crashes must say so: each crashed
        # node needs a matching "recovered" record (the evidence the report
        # and the corpus goldens key on)
        checks += 1
        crashed = {
            f.node
            for f in res.distributed.faults
            if f.kind in ("crash", "worker_lost")
        }
        masked = {
            f.node for f in (getattr(res.distributed, "recovered", None) or [])
        }
        if not crashed <= masked:
            divs.append(
                Divergence(
                    f"recovery.evidence[{backend}]",
                    "undegraded run absorbed crashes without RECOVERED "
                    "records naming the dead nodes",
                    expected=sorted(crashed),
                    actual=sorted(masked),
                )
            )
    seq = exp.baseline()
    checks += 1
    if list(res.stdout) != list(seq.stdout):
        divs.append(
            Divergence(
                f"dist.stdout[{backend}]",
                "distributed stdout diverged from the sequential baseline",
                expected=seq.stdout,
                actual=res.stdout,
            )
        )
    checks += 1
    if res.distributed.result != seq.result:
        divs.append(
            Divergence(
                f"dist.result[{backend}]",
                "distributed result diverged from the sequential baseline",
                expected=seq.result,
                actual=res.distributed.result,
            )
        )
    checks += 1
    cluster = exp.cluster()
    stats = res.distributed.node_stats
    seq_objects = seq.node_stats[0].heap_objects if seq.node_stats else 0
    dist_objects = sum(ns.heap_objects for ns in stats)
    if len(stats) != cluster.size or dist_objects < seq_objects:
        divs.append(
            Divergence(
                f"dist.nodestats[{backend}]",
                f"expected {cluster.size} node stats covering >= "
                f"{seq_objects} heap objects",
                expected=(cluster.size, seq_objects),
                actual=(len(stats), dist_objects),
            )
        )
    checks += 1
    if res.distributed.makespan_s <= 0.0:
        divs.append(
            Divergence(
                f"dist.makespan[{backend}]",
                "distributed makespan must be positive",
                actual=res.distributed.makespan_s,
            )
        )
    if deep and backend == "sim":
        import dataclasses as _dc

        from repro.runtime.executor import DistributedExecutor

        def cluster_run(engine: str):
            run = DistributedExecutor(
                exp.rewrite().program, exp.plan(), cluster,
                async_writes=exp.config.backend.async_writes,
                backend="sim",
                faults=plan_faults,
                replicas=exp.replicas(),
                engine=engine,
                recovery=rec_plan,
            ).run()
            return (
                run.stdout, run.result, run.makespan_s,
                run.total_messages, run.total_bytes,
                [_dc.asdict(s) for s in run.node_stats],
            )

        ref_obs = cluster_run("reference")
        for engine in ("fast", "compiled"):
            checks += 1
            obs = cluster_run(engine)
            if obs != ref_obs:
                divs.append(
                    Divergence(
                        "sim.determinism"
                        + ("" if engine == "fast" else f".{engine}"),
                        f"{engine}-tier cluster execution is not "
                        "byte-identical to the reference path on the "
                        "simulator",
                        expected=ref_obs,
                        actual=obs,
                    )
                )
    return divs, checks


def check_experiment(exp, deep: bool = False) -> ConformanceOutcome:
    """Conformance-check one configured :class:`~repro.api.Experiment`:
    the VM-engine differential on its compiled workload, then the
    distributed-vs-baseline checks on its configured backend.  This is what
    :meth:`Experiment.conformance` calls."""
    outcome = ConformanceOutcome(name=exp.config.label())
    if _vm_differential(outcome, exp.compile().loaded):
        return outcome
    divs, checks = _check_backend(exp, exp.config.backend.name, deep)
    outcome.divergences.extend(divs)
    outcome.checks_run += checks
    return outcome


def check_scenario(
    scenario: Scenario,
    cache=None,
    deep: bool = False,
    vm_only: bool = False,
) -> ConformanceOutcome:
    """Run every conformance check a scenario asks for: the VM-engine
    differential, then — unless the program faults or ``vm_only`` — the
    distributed checks on each backend of the scenario's world."""
    from repro.api.experiment import Experiment
    from repro.harness.cache import StageCache

    cache = cache if cache is not None else StageCache()
    outcome = ConformanceOutcome(name=scenario.name)
    with temp_workload(scenario.source) as wname:
        world = scenario.world
        base_exp = Experiment(
            world.experiment_config(wname, backend="sim"), cache=cache
        )
        if _vm_differential(outcome, base_exp.compile().loaded):
            return outcome
        if vm_only or scenario.vm_only():
            return outcome
        for backend in world.backends:
            exp = (
                base_exp
                if backend == "sim"
                else Experiment(
                    world.experiment_config(wname, backend=backend),
                    cache=cache,
                )
            )
            divs, checks = _check_backend(exp, backend, deep)
            outcome.divergences.extend(divs)
            outcome.checks_run += checks
    return outcome


# ---------------------------------------------------------------------------
# minimization
# ---------------------------------------------------------------------------
def minimize_scenario(
    scenario: Scenario,
    outcome: ConformanceOutcome,
    max_evals: int = 120,
    deep: bool = False,
) -> Tuple[Scenario, ConformanceOutcome, int]:
    """Shrink a failing generated scenario while it still reproduces at
    least one of the original divergence kinds.  ``deep`` must match the
    mode that found the failure, or deep-only divergences
    (``sim.determinism``) could never reproduce during shrinking.  Returns
    the minimized scenario, its (re-checked) outcome and the predicate
    evaluations used."""
    from repro.testing.genprog import shrink_program

    if scenario.spec is None:
        return scenario, outcome, 0
    target = {d.check for d in outcome.divergences}
    # pure VM divergences replay without the (expensive) distributed grid
    vm_only = all(c.startswith("vm.") for c in target)

    def reproduces(spec: ProgramSpec) -> bool:
        cand = Scenario(
            name=scenario.name, source=spec.render(), world=scenario.world,
            spec=spec, gen_seed=scenario.gen_seed,
        )
        out = check_scenario(cand, deep=deep, vm_only=vm_only)
        return any(d.check in target for d in out.divergences)

    shrunk, evals = shrink_program(scenario.spec, reproduces, max_evals=max_evals)
    minimized = Scenario(
        name=scenario.name, source=shrunk.render(), world=scenario.world,
        spec=shrunk, gen_seed=scenario.gen_seed,
    )
    final = check_scenario(minimized, deep=deep, vm_only=vm_only)
    if final.ok:  # shrinking must never lose the bug; fall back if it did
        return scenario, outcome, evals
    return minimized, final, evals


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------
def _gen_config_for(seed: int, i: int) -> GenConfig:
    """The scenario mix: mostly rich multi-class programs, every 4th one
    fault-capable, every 5th one flat (the old test_fastpath shape), every
    6th one big (deep nesting, wide loops, four classes)."""
    pseed = derive_seed("genprog", seed, i)
    if i % 5 == 4:
        return GenConfig(seed=pseed, n_classes=0, allow_faults=(i % 2 == 0))
    if i % 6 == 5:
        return GenConfig(
            seed=pseed, n_classes=4, n_methods=3, max_stmts=8, max_depth=3,
            loop_bound=12, recursion_depth=8,
        )
    return GenConfig(
        seed=pseed,
        n_classes=1 + (i % 3),
        n_methods=1 + (i % 2),
        allow_faults=(i % 4 == 3),
    )


def run_fuzz(
    seed: int,
    budget: int,
    include_thread: bool = True,
    include_process: bool = False,
    include_faults: bool = False,
    include_recovery: bool = False,
    include_tcp: bool = False,
    deep: bool = False,
    shrink_budget: int = 120,
    max_failures: int = 5,
    collect_golden: bool = False,
    log=None,
) -> Tuple[ConformanceReport, List[Tuple[Scenario, ConformanceOutcome]]]:
    """Generate and conformance-check ``budget`` scenarios derived from
    ``seed``.  Returns the report plus, when ``collect_golden``, the passing
    ``(scenario, outcome)`` pairs (for ``repro fuzz --save-corpus``).

    Each scenario gets its own program seed and world seed via
    :func:`~repro.testing.seeds.derive_seed`, so any single iteration can
    be regenerated in isolation."""
    from repro.harness.cache import StageCache

    report = ConformanceReport(seed=seed, budget=budget)
    golden: List[Tuple[Scenario, ConformanceOutcome]] = []
    cache = StageCache()
    t0 = time.perf_counter()
    for i in range(budget):
        cfg = _gen_config_for(seed, i)
        spec = generate_program(cfg)
        world = generate_world(
            random.Random(derive_seed("genworld", seed, i)),
            include_thread=include_thread,
            include_process=include_process,
            include_faults=include_faults,
            include_recovery=include_recovery,
            include_tcp=include_tcp,
        )
        scenario = Scenario(
            name=f"fuzz-{seed}-{i}",
            source=spec.render(),
            world=world,
            spec=spec,
            gen_seed=cfg.seed,
        )
        outcome = check_scenario(scenario, cache=cache, deep=deep)
        report.scenarios += 1
        report.checks += outcome.checks_run
        if outcome.faulted:
            report.faulted += 1
        if outcome.ok:
            if collect_golden:
                golden.append((scenario, outcome))
            continue
        if log is not None:
            log(f"{scenario.name}: DIVERGED "
                f"({', '.join(sorted({d.check for d in outcome.divergences}))})"
                f" — minimizing...")
        minimized, final, evals = minimize_scenario(
            scenario, outcome, max_evals=shrink_budget, deep=deep
        )
        report.failures.append(
            CounterExample(
                name=scenario.name,
                world=world.to_dict(),
                source=minimized.source,
                divergences=final.divergences,
                gen_seed=cfg.seed,
                gen_config=cfg.to_dict(),
                original_statements=spec.num_statements(),
                minimized_statements=(
                    minimized.spec.num_statements()
                    if minimized.spec is not None else 0
                ),
                shrink_evals=evals,
                reference=final.reference,
            )
        )
        if len(report.failures) >= max_failures:
            if log is not None:
                log(f"stopping after {max_failures} failures")
            break
    report.elapsed_s = time.perf_counter() - t0
    return report, golden
