"""The one seed knob for every randomized test, bench and fuzzer.

``REPRO_TEST_SEED`` is the documented environment variable from which all
randomness in the repository derives:

* the pytest suite's global RNG seeding and hypothesis profile
  (``tests/conftest.py``),
* the reproduction benches' ``BENCH_SEED`` (``benchmarks/conftest.py``),
* ``repro fuzz`` and the :mod:`repro.testing` generators.

Consumers never use the base seed directly — they call :func:`derive_seed`
with a label naming their stream, so two independent consumers do not
share (or correlate) their random sequences.  Derivation is a SHA-256 of
``(base, labels...)``: stable across processes, platforms and Python
versions, unlike ``hash()``.

On test failure the conftest prints the effective seed so any run can be
reproduced with ``REPRO_TEST_SEED=<value> pytest ...``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

__all__ = ["ENV_VAR", "DEFAULT_SEED", "base_seed", "derive_seed", "describe"]

#: the documented environment knob every randomized test derives from
ENV_VAR = "REPRO_TEST_SEED"

#: base seed when the knob is unset — fixed, so plain ``pytest`` runs are
#: reproducible by default
DEFAULT_SEED = 0


def base_seed(default: int = DEFAULT_SEED) -> int:
    """The effective base seed: ``$REPRO_TEST_SEED`` (decimal or ``0x``-hex;
    arbitrary strings are hashed) or ``default`` when unset/empty."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        return int(raw, 0)
    except ValueError:
        digest = hashlib.sha256(raw.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")


def derive_seed(*labels: object, base: Optional[int] = None) -> int:
    """A stable 63-bit stream seed for ``(base_seed, *labels)``.

    Distinct label tuples give independent streams; the same tuple always
    gives the same seed for a given base — so a failure report can name the
    exact stream that produced it."""
    if base is None:
        base = base_seed()
    h = hashlib.sha256(str(base).encode("utf-8"))
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


def describe(base: Optional[int] = None) -> str:
    """Human-readable provenance line printed on failures."""
    return f"{ENV_VAR}={base if base is not None else base_seed()}"
