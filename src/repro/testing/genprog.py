"""Seeded, size-parameterized MJ program generator with shrinking.

Replaces (and subsumes) the flat statement fuzzer that used to live inline
in ``tests/vm/test_fastpath.py``: programs here are **multi-class** — helper
classes with int fields, an ``int[8]`` array, generated methods, bounded
recursion and a cross-class ``peer`` reference chain (class ``i`` may read
fields, call methods and index arrays of class ``i-1``), plus a ``FuzzMain``
whose ``main`` drives them through loops, branches, array/field stores and
``Sys.println`` I/O.  Every program is well-typed by construction and, with
``allow_faults=False``, total: division, modulo and array indexing go
through the ``FuzzMain.div``/``mod``/``idx`` guard helpers.  With
``allow_faults=True`` the generator also emits raw ``/``, ``%`` and
unguarded indices, producing programs that may fault mid-execution — the
VM differential oracle checks those too (fault text and charged cycles must
match between engines).

The generator is **structured**: :func:`generate_program` returns a
:class:`ProgramSpec` (classes, methods, a statement tree), and
``spec.render()`` deterministically produces the MJ source.  Structure is
what makes :func:`shrink_program` possible — the shrinker removes
statements, flattens branches/loops and drops methods/classes while a
caller-supplied predicate still reproduces the failure, yielding the
minimized counterexamples ``repro fuzz`` reports.

Everything derives from one ``random.Random(cfg.seed)``; the same
:class:`GenConfig` always yields byte-identical source (the corpus and
failure replays depend on this).
"""

from __future__ import annotations

import copy
import random
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "GenConfig",
    "ProgramSpec",
    "ClassSpec",
    "MethodSpec",
    "generate_program",
    "generate_source",
    "shrink_program",
    "ARRAY_LEN",
]

#: every helper class carries one ``int[ARRAY_LEN]`` field named ``data``
ARRAY_LEN = 8

_SAFE_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_REL_OPS = ("<", "<=", ">", ">=", "==", "!=")


@dataclass(frozen=True)
class GenConfig:
    """Knobs of one generated program — the scenario's reproducible recipe."""

    seed: int = 0
    #: helper classes besides ``FuzzMain`` (0 = flat single-class program,
    #: the shape of the old ``test_fastpath`` fuzzer)
    n_classes: int = 2
    #: generated methods per helper class (``check()`` comes on top)
    n_methods: int = 2
    #: statements per block before nesting
    max_stmts: int = 5
    #: maximum statement nesting depth (if/for)
    max_depth: int = 2
    #: maximum expression tree depth
    max_expr_depth: int = 2
    #: upper bound for generated for-loop trip counts
    loop_bound: int = 6
    #: upper bound for generated recursion depths
    recursion_depth: int = 6
    #: emit raw ``/``, ``%`` and unguarded array indices (programs may fault)
    allow_faults: bool = False
    allow_recursion: bool = True
    allow_arrays: bool = True
    #: emit ``Sys.println`` statements in ``main`` (the digest prints always)
    allow_io: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GenConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# statement tree
# ---------------------------------------------------------------------------
@dataclass
class SAssign:
    """``lhs = expr;`` — lhs is a variable, field or array slot."""

    lhs: str
    expr: str

    def render(self, indent: str) -> List[str]:
        return [f"{indent}{self.lhs} = {self.expr};"]


@dataclass
class SPrint:
    """``Sys.println("tag:" + expr);``"""

    tag: str
    expr: str

    def render(self, indent: str) -> List[str]:
        return [f'{indent}Sys.println("{self.tag}:" + ({self.expr}));']


@dataclass
class SIf:
    cond: str
    then: List[object]
    orelse: List[object]

    def render(self, indent: str) -> List[str]:
        lines = [f"{indent}if ({self.cond}) {{"]
        for s in self.then:
            lines.extend(s.render(indent + "    "))
        if self.orelse:
            lines.append(f"{indent}}} else {{")
            for s in self.orelse:
                lines.extend(s.render(indent + "    "))
        lines.append(f"{indent}}}")
        return lines


@dataclass
class SFor:
    var: str
    bound: int
    body: List[object]

    def render(self, indent: str) -> List[str]:
        lines = [
            f"{indent}for (int {self.var} = 0; "
            f"{self.var} < {self.bound}; {self.var}++) {{"
        ]
        for s in self.body:
            lines.extend(s.render(indent + "    "))
        lines.append(f"{indent}}}")
        return lines


Stmt = object  # SAssign | SPrint | SIf | SFor


# ---------------------------------------------------------------------------
# program spec
# ---------------------------------------------------------------------------
@dataclass
class MethodSpec:
    name: str
    body: List[Stmt]
    ret_expr: str
    #: "plain" (``m(int p0, int p1)``) or "rec" (``m(int n, int acc)``,
    #: self-recursive on ``n - 1`` — terminates by construction)
    kind: str = "plain"


@dataclass
class ClassSpec:
    index: int
    methods: List[MethodSpec] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"Helper{self.index}"

    @property
    def has_peer(self) -> bool:
        return self.index > 0

    def rec_method(self) -> Optional[MethodSpec]:
        for m in self.methods:
            if m.kind == "rec":
                return m
        return None


@dataclass
class ProgramSpec:
    """A generated program, structured for rendering *and* shrinking."""

    config: GenConfig
    classes: List[ClassSpec]
    #: ``int x{i} = <literal>;`` initializers of main's scratch variables
    main_vars: List[int]
    main_body: List[Stmt]

    # ------------------------------------------------------------- metrics
    def num_statements(self) -> int:
        def count(stmts: Sequence[Stmt]) -> int:
            n = 0
            for s in stmts:
                n += 1
                if isinstance(s, SIf):
                    n += count(s.then) + count(s.orelse)
                elif isinstance(s, SFor):
                    n += count(s.body)
            return n

        total = count(self.main_body)
        for cls in self.classes:
            for m in cls.methods:
                total += count(m.body) + 1
        return total

    def clone(self) -> "ProgramSpec":
        return copy.deepcopy(self)

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        lines: List[str] = []
        for cls in self.classes:
            lines.extend(self._render_class(cls))
            lines.append("")
        lines.extend(self._render_main())
        return "\n".join(lines) + "\n"

    def _render_class(self, cls: ClassSpec) -> List[str]:
        ind = "    "
        lines = [f"class {cls.name} {{"]
        lines.append(f"{ind}int f0;")
        lines.append(f"{ind}int f1;")
        lines.append(f"{ind}int[] data;")
        if cls.has_peer:
            peer_cls = f"Helper{cls.index - 1}"
            lines.append(f"{ind}{peer_cls} peer;")
            ctor_sig = f"{ind}{cls.name}(int s, {peer_cls} peer) {{"
        else:
            ctor_sig = f"{ind}{cls.name}(int s) {{"
        lines.append(ctor_sig)
        if cls.has_peer:
            lines.append(f"{ind}    this.peer = peer;")
        lines.append(f"{ind}    f0 = s;")
        lines.append(f"{ind}    f1 = s * 7 + 3;")
        lines.append(f"{ind}    data = new int[{ARRAY_LEN}];")
        lines.append(
            f"{ind}    for (int i = 0; i < {ARRAY_LEN}; i++) "
            f"{{ data[i] = i * s + f0; }}"
        )
        lines.append(f"{ind}}}")
        for m in cls.methods:
            lines.extend(self._render_method(m, ind))
        # check(): the fixed state digest every class exposes — main's final
        # println observes every field and array slot through it
        lines.append(f"{ind}int check() {{")
        lines.append(f"{ind}    int s = f0 + f1 * 5;")
        lines.append(
            f"{ind}    for (int i = 0; i < {ARRAY_LEN}; i++) "
            f"{{ s = s + data[i] * (i + 1); }}"
        )
        if cls.has_peer:
            lines.append(f"{ind}    return s + peer.check();")
        else:
            lines.append(f"{ind}    return s;")
        lines.append(f"{ind}}}")
        lines.append("}")
        return lines

    def _render_method(self, m: MethodSpec, ind: str) -> List[str]:
        if m.kind == "rec":
            lines = [f"{ind}int {m.name}(int n, int acc) {{"]
            lines.append(f"{ind}    if (n <= 0) {{ return acc; }}")
            for s in m.body:
                lines.extend(s.render(ind + "    "))
            lines.append(f"{ind}    return {m.name}(n - 1, {m.ret_expr});")
        else:
            lines = [f"{ind}int {m.name}(int p0, int p1) {{"]
            lines.append(f"{ind}    int a0 = p0 ^ p1;")
            for s in m.body:
                lines.extend(s.render(ind + "    "))
            lines.append(f"{ind}    return {m.ret_expr};")
        lines.append(f"{ind}}}")
        return lines

    def _render_main(self) -> List[str]:
        ind = "    "
        body_ind = ind + "    "
        lines = ["class FuzzMain {"]
        # total-arithmetic guards — referenced by generated expressions
        lines.append(
            f"{ind}static int div(int a, int b) "
            f"{{ if (b == 0) {{ return a; }} return a / b; }}"
        )
        lines.append(
            f"{ind}static int mod(int a, int b) "
            f"{{ if (b == 0) {{ return 0; }} return a % b; }}"
        )
        lines.append(
            f"{ind}static int idx(int i, int n) "
            f"{{ int m = i % n; if (m < 0) {{ m = m + n; }} return m; }}"
        )
        lines.append(f"{ind}static void main(String[] args) {{")
        for cls in self.classes:
            init = 3 + 2 * cls.index
            if cls.has_peer:
                lines.append(
                    f"{body_ind}{cls.name} h{cls.index} = "
                    f"new {cls.name}({init}, h{cls.index - 1});"
                )
            else:
                lines.append(
                    f"{body_ind}{cls.name} h{cls.index} = new {cls.name}({init});"
                )
        for i, init in enumerate(self.main_vars):
            lines.append(f"{body_ind}int x{i} = {init};")
        for s in self.main_body:
            lines.extend(s.render(body_ind))
        digest = " + \",\" + ".join(
            [f"x{i}" for i in range(len(self.main_vars))]
            + [f"h{cls.index}.check()" for cls in self.classes]
        )
        lines.append(f'{body_ind}Sys.println("digest:" + {digest});')
        lines.append(f"{ind}}}")
        lines.append("}")
        return lines


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------
class _Scope:
    """What an expression may reference at its generation site."""

    def __init__(
        self,
        ints: List[str],
        arrays: List[str],
        fields_: List[str],
        calls: List[Tuple[str, str]],
        rec_calls: List[Tuple[str, str]],
    ) -> None:
        self.ints = ints          # plain int variables
        self.arrays = arrays      # int[] expressions (always length ARRAY_LEN)
        self.fields = fields_     # readable int field expressions
        self.calls = calls        # (receiver, name) of plain int(int,int) methods
        self.rec_calls = rec_calls  # (receiver, name) of rec int(int,int) methods


class _Gen:
    def __init__(self, cfg: GenConfig) -> None:
        self.cfg = cfg
        self.rng = random.Random(cfg.seed)
        self._uniq = 0

    def fresh(self, prefix: str) -> str:
        self._uniq += 1
        return f"{prefix}{self._uniq}"

    # ----------------------------------------------------------- expressions
    def literal(self) -> str:
        v = self.rng.randint(-99, 99)
        return str(v) if v >= 0 else f"(0 - {-v})"

    def atom(self, scope: _Scope) -> str:
        pool: List[str] = [self.literal()]
        pool.extend(scope.ints)
        pool.extend(scope.fields)
        return self.rng.choice(pool)

    def index_expr(self, scope: _Scope, depth: int) -> str:
        inner = self.expr(scope, depth + 1)
        if self.cfg.allow_faults and self.rng.random() < 0.2:
            return inner  # may be out of bounds — that's the point
        return f"FuzzMain.idx({inner}, {ARRAY_LEN})"

    def expr(self, scope: _Scope, depth: int = 0) -> str:
        rng = self.rng
        if depth >= self.cfg.max_expr_depth or rng.random() < 0.35:
            return self.atom(scope)
        forms = ["bin", "bin", "divmod"]
        if scope.arrays and self.cfg.allow_arrays:
            forms.append("aread")
        if scope.calls:
            forms.append("call")
        if scope.rec_calls:
            forms.append("rec")
        form = rng.choice(forms)
        if form == "bin":
            a = self.expr(scope, depth + 1)
            b = self.expr(scope, depth + 1)
            return f"({a} {rng.choice(_SAFE_BIN_OPS)} {b})"
        if form == "divmod":
            a = self.expr(scope, depth + 1)
            b = self.expr(scope, depth + 1)
            op = rng.choice(("/", "%"))
            if self.cfg.allow_faults and rng.random() < 0.25:
                return f"({a} {op} {b})"
            fn = "div" if op == "/" else "mod"
            return f"FuzzMain.{fn}({a}, {b})"
        if form == "aread":
            arr = rng.choice(scope.arrays)
            return f"{arr}[{self.index_expr(scope, depth)}]"
        if form == "rec":
            recv, name = rng.choice(scope.rec_calls)
            n = rng.randint(1, self.cfg.recursion_depth)
            return f"{recv}{name}({n}, {self.expr(scope, depth + 1)})"
        recv, name = rng.choice(scope.calls)
        a = self.expr(scope, depth + 1)
        b = self.expr(scope, depth + 1)
        return f"{recv}{name}({a}, {b})"

    def cond(self, scope: _Scope) -> str:
        a = self.expr(scope, self.cfg.max_expr_depth - 1)
        b = self.expr(scope, self.cfg.max_expr_depth - 1)
        return f"{a} {self.rng.choice(_REL_OPS)} {b}"

    # ------------------------------------------------------------ statements
    def block(
        self,
        scope: _Scope,
        writable: List[str],
        depth: int,
        n_stmts: Optional[int] = None,
        io: bool = False,
    ) -> List[Stmt]:
        rng = self.rng
        if n_stmts is None:
            n_stmts = rng.randint(1, self.cfg.max_stmts)
        stmts: List[Stmt] = []
        for _ in range(n_stmts):
            kinds = ["assign", "assign", "assign"]
            if scope.arrays and self.cfg.allow_arrays:
                kinds.append("astore")
            if depth < self.cfg.max_depth:
                kinds.extend(["if", "for"])
            if io and self.cfg.allow_io:
                kinds.append("print")
            kind = rng.choice(kinds)
            if kind == "assign":
                stmts.append(SAssign(rng.choice(writable), self.expr(scope)))
            elif kind == "astore":
                arr = rng.choice(scope.arrays)
                lhs = f"{arr}[{self.index_expr(scope, 0)}]"
                stmts.append(SAssign(lhs, self.expr(scope)))
            elif kind == "print":
                stmts.append(SPrint(self.fresh("t"), self.expr(scope)))
            elif kind == "if":
                then = self.block(scope, writable, depth + 1,
                                  rng.randint(1, 2), io=io)
                orelse = (
                    self.block(scope, writable, depth + 1,
                               rng.randint(1, 2), io=io)
                    if rng.random() < 0.6 else []
                )
                stmts.append(SIf(self.cond(scope), then, orelse))
            else:
                var = self.fresh("i")
                inner = _Scope(
                    scope.ints + [var], scope.arrays, scope.fields,
                    scope.calls, scope.rec_calls,
                )
                body = self.block(inner, writable, depth + 1,
                                  rng.randint(1, 2), io=io)
                stmts.append(SFor(var, rng.randint(1, self.cfg.loop_bound), body))
        return stmts

    # --------------------------------------------------------------- classes
    def helper_class(self, index: int, prev: Optional[ClassSpec]) -> ClassSpec:
        cls = ClassSpec(index)
        # what this class's method bodies may touch: own fields/array, and —
        # through ``peer`` — the previous class's state and methods
        fields_ = ["f0", "f1"]
        arrays = ["data"] if self.cfg.allow_arrays else []
        calls: List[Tuple[str, str]] = []
        rec_calls: List[Tuple[str, str]] = []
        if prev is not None:
            fields_ += ["peer.f0", "peer.f1"]
            if self.cfg.allow_arrays:
                arrays.append("peer.data")
            calls = [("peer.", m.name) for m in prev.methods if m.kind == "plain"]
            prev_rec = prev.rec_method()
            if prev_rec is not None:
                rec_calls = [("peer.", prev_rec.name)]
        n_rec = 1 if (self.cfg.allow_recursion and
                      self.rng.random() < 0.8) else 0
        for j in range(max(self.cfg.n_methods, 1)):
            if n_rec and j == 0:
                scope = _Scope(["n", "acc"], arrays, fields_, calls, rec_calls)
                body = self.block(scope, ["acc"], self.cfg.max_depth,
                                  self.rng.randint(0, 1))
                cls.methods.append(
                    MethodSpec(f"rec{index}", body,
                               self.expr(scope, 1), kind="rec")
                )
                continue
            scope = _Scope(["p0", "p1", "a0"], arrays, fields_, calls, rec_calls)
            body = self.block(scope, ["a0"], self.cfg.max_depth - 1,
                              self.rng.randint(0, 2))
            cls.methods.append(
                MethodSpec(f"m{index}_{j}", body, self.expr(scope))
            )
        return cls

    def program(self) -> ProgramSpec:
        classes: List[ClassSpec] = []
        prev: Optional[ClassSpec] = None
        for i in range(self.cfg.n_classes):
            cls = self.helper_class(i, prev)
            classes.append(cls)
            prev = cls
        n_vars = self.rng.randint(3, 4)
        main_vars = [self.rng.randint(-50, 50) for _ in range(n_vars)]
        ints = [f"x{i}" for i in range(n_vars)]
        fields_: List[str] = []
        arrays: List[str] = []
        calls: List[Tuple[str, str]] = []
        rec_calls: List[Tuple[str, str]] = []
        for cls in classes:
            h = f"h{cls.index}"
            fields_ += [f"{h}.f0", f"{h}.f1"]
            if self.cfg.allow_arrays:
                arrays.append(f"{h}.data")
            for m in cls.methods:
                if m.kind == "plain":
                    calls.append((f"{h}.", m.name))
                else:
                    rec_calls.append((f"{h}.", m.name))
        scope = _Scope(ints, arrays, fields_, calls, rec_calls)
        body = self.block(
            scope, ints, 0,
            self.rng.randint(max(1, self.cfg.max_stmts - 2),
                             self.cfg.max_stmts),
            io=True,
        )
        return ProgramSpec(self.cfg, classes, main_vars, body)


def generate_program(cfg: GenConfig) -> ProgramSpec:
    """The seeded generator: same config → byte-identical program."""
    return _Gen(cfg).program()


def generate_source(cfg: GenConfig) -> str:
    return generate_program(cfg).render()


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def _nested_blocks(stmts: List[Stmt]):
    """Yield every statement list in a tree (the list itself included)."""
    yield stmts
    for s in stmts:
        if isinstance(s, SIf):
            yield from _nested_blocks(s.then)
            yield from _nested_blocks(s.orelse)
        elif isinstance(s, SFor):
            yield from _nested_blocks(s.body)


def _candidates(spec: ProgramSpec):
    """Reduced copies of ``spec``, most aggressive first.  Copies that no
    longer compile are fine — the predicate rejects them."""
    # drop the highest helper class (digest/decls re-render without it)
    if spec.classes:
        c = spec.clone()
        c.classes.pop()
        yield c
    # drop whole methods
    for ci, cls in enumerate(spec.classes):
        for mi in range(len(cls.methods)):
            c = spec.clone()
            c.classes[ci].methods.pop(mi)
            yield c
    # statement-level reductions over every block in the program
    roots: List[Tuple[Callable[[ProgramSpec], List[Stmt]], List[Stmt]]] = [
        (lambda s: s.main_body, spec.main_body)
    ]
    for ci, cls in enumerate(spec.classes):
        for mi, m in enumerate(cls.methods):
            roots.append(
                (lambda s, ci=ci, mi=mi: s.classes[ci].methods[mi].body,
                 m.body)
            )
    for getter, root in roots:
        # address blocks by their path of (stmt index, branch) hops
        def blocks_with_paths(stmts, path):
            yield stmts, path
            for i, s in enumerate(stmts):
                if isinstance(s, SIf):
                    yield from blocks_with_paths(s.then, path + [(i, "then")])
                    yield from blocks_with_paths(s.orelse, path + [(i, "orelse")])
                elif isinstance(s, SFor):
                    yield from blocks_with_paths(s.body, path + [(i, "body")])

        def resolve(c_spec, path):
            blk = getter(c_spec)
            for i, branch in path:
                blk = getattr(blk[i], branch)
            return blk

        for blk, path in blocks_with_paths(root, []):
            for i, s in enumerate(blk):
                # remove the statement entirely
                c = spec.clone()
                resolve(c, path).pop(i)
                yield c
                if isinstance(s, SIf):
                    # replace the if with one of its branches
                    for branch in ("then", "orelse"):
                        c = spec.clone()
                        tgt = resolve(c, path)
                        inner = list(getattr(tgt[i], branch))
                        tgt[i:i + 1] = inner
                        yield c
                elif isinstance(s, SFor):
                    # hoist the body / shrink the trip count
                    c = spec.clone()
                    tgt = resolve(c, path)
                    tgt[i:i + 1] = list(tgt[i].body)
                    yield c
                    if s.bound > 1:
                        c = spec.clone()
                        resolve(c, path)[i].bound = 1
                        yield c
    # drop main scratch variables (highest first; body refs reject via compile)
    if len(spec.main_vars) > 1:
        c = spec.clone()
        c.main_vars.pop()
        yield c


def shrink_program(
    spec: ProgramSpec,
    predicate: Callable[[ProgramSpec], bool],
    max_evals: int = 200,
) -> Tuple[ProgramSpec, int]:
    """Greedy structural minimization: repeatedly apply the first reduction
    that still satisfies ``predicate`` (e.g. "the oracle still reports the
    same divergence") until none does or ``max_evals`` predicate calls are
    spent.  Returns ``(minimized spec, evaluations used)``.

    ``predicate`` must treat non-compiling programs as ``False``."""
    evals = 0
    current = spec
    progress = True
    while progress and evals < max_evals:
        progress = False
        for cand in _candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            try:
                ok = predicate(cand)
            except Exception:
                ok = False
            if ok:
                current = cand
                progress = True
                break
    return current, evals
