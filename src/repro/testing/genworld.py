"""Seeded generators for execution *worlds*: cluster topology, network,
partitioner and runtime-backend configurations.

A :class:`WorldSpec` is the environment half of a fuzz scenario (the
program half comes from :mod:`repro.testing.genprog`).  It deliberately
spans the degenerate corners the fixed test grids never visit:

* 1-node "clusters" (distribution must collapse to sequential semantics),
* the paper's heterogeneous 2-node testbed shape,
* mid-size heterogeneous clusters with node speeds spread over ~8x,
* wide 16-node topologies where most nodes sit idle (plans use fewer
  partitions than there are machines),
* every registered network preset and partitioner, both granularities,
  and sync vs fire-and-forget remote writes.

Worlds render to :class:`repro.api.config.ExperimentConfig` (one per
backend), so fuzz scenarios run through exactly the same typed-config /
registry / stage-cache plumbing as every other experiment in the repo.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, fields
from typing import Optional, Tuple

from repro.runtime.checkpoint import RecoveryPlan
from repro.runtime.faults import FaultPlan

__all__ = [
    "WorldSpec",
    "generate_world",
    "degenerate_worlds",
    "SPEED_PALETTE",
]

#: CPU speeds (Hz) heterogeneous clusters draw from — 400 MHz handhelds up
#: to 3.2 GHz servers, the paper's pervasive-computing spread
SPEED_PALETTE = (400e6, 800e6, 1.0e9, 1.7e9, 2.4e9, 3.2e9)


@dataclass(frozen=True)
class WorldSpec:
    """One reproducible execution environment for a generated program."""

    nparts: int = 2
    method: str = "multilevel"
    granularity: str = "class"
    network: str = "ethernet_100m"
    #: per-node CPU speeds; length is the cluster size (>= nparts)
    speeds: Tuple[float, ...] = (1.7e9, 800e6)
    mem_mb: int = 512
    #: runtime backends the oracle must agree across
    backends: Tuple[str, ...] = ("sim",)
    async_writes: bool = False
    #: seeded fault plan injected at runtime (None = fault-free world)
    faults: Optional[FaultPlan] = None
    #: recovery plan (checkpoint + heartbeat + migration); None keeps the
    #: degradation-only contract of PR 6
    recovery: Optional[RecoveryPlan] = None
    #: quorum replication factor (1 = unreplicated)
    replication: int = 1
    #: VM execution tier every machine in the world is forced to
    #: ("default" = ambient REPRO_VM_ENGINE)
    engine: str = "default"

    def __post_init__(self) -> None:
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))
        object.__setattr__(self, "backends", tuple(self.backends))
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        if isinstance(self.recovery, dict):
            object.__setattr__(
                self, "recovery", RecoveryPlan.from_dict(self.recovery)
            )

    @property
    def nnodes(self) -> int:
        return len(self.speeds)

    def label(self) -> str:
        tags = ""
        if self.faults is not None:
            tags += "/faulty" if not self.faults.transient_only else "/lossy"
        if self.recovery is not None:
            tags += "/rec"
        if self.replication > 1:
            tags += f"/r{self.replication}"
        if self.engine != "default":
            tags += f"/{self.engine}"
        return (
            f"k{self.nparts}/{self.method}/{self.granularity}"
            f"/{self.network}/n{self.nnodes}/{'+'.join(self.backends)}{tags}"
        )

    # ----------------------------------------------------------- round trip
    def to_dict(self) -> dict:
        d = asdict(self)
        d["speeds"] = list(self.speeds)
        d["backends"] = list(self.backends)
        if self.faults is not None:
            d["faults"] = self.faults.to_dict()
        if self.recovery is not None:
            d["recovery"] = self.recovery.to_dict()
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "WorldSpec":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "speeds" in kwargs:
            kwargs["speeds"] = tuple(kwargs["speeds"])
        if "backends" in kwargs:
            kwargs["backends"] = tuple(kwargs["backends"])
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        if kwargs.get("recovery") is not None:
            kwargs["recovery"] = RecoveryPlan.from_dict(kwargs["recovery"])
        return cls(**kwargs)

    # ------------------------------------------------------------- configs
    def experiment_config(
        self, workload: str, size: str = "test", backend: Optional[str] = None
    ):
        """The typed :class:`~repro.api.config.ExperimentConfig` this world
        denotes for one backend (default: the world's first)."""
        from repro.api.config import (
            BackendConfig,
            ClusterConfig,
            ExperimentConfig,
            PartitionConfig,
            WorkloadSpec,
        )

        return ExperimentConfig(
            workload=WorkloadSpec(name=workload, size=size),
            partition=PartitionConfig(
                method=self.method,
                nparts=self.nparts,
                granularity=self.granularity,
                replication=self.replication,
            ),
            cluster=ClusterConfig(
                network=self.network,
                speeds=self.speeds,
                mem_mb=self.mem_mb,
                faults=self.faults,
                recovery=self.recovery,
            ),
            backend=BackendConfig(
                name=backend if backend is not None else self.backends[0],
                async_writes=self.async_writes,
                engine=self.engine,
            ),
        )


def _speeds(rng: random.Random, n: int, heterogeneous: bool) -> Tuple[float, ...]:
    if not heterogeneous:
        return (rng.choice(SPEED_PALETTE),) * n
    return tuple(rng.choice(SPEED_PALETTE) for _ in range(n))


def generate_world(
    rng: random.Random,
    include_thread: bool = True,
    include_process: bool = False,
    max_nodes: int = 16,
    include_faults: bool = False,
    include_recovery: bool = False,
    include_tcp: bool = False,
) -> WorldSpec:
    """Sample one world.  Distribution is deliberately corner-heavy: about
    one scenario in five runs a degenerate topology (1 node, or a wide
    cluster with idle machines).

    With ``include_faults`` the world may additionally carry a seeded
    :class:`~repro.runtime.faults.FaultPlan` — transient loss (drop /
    duplication / delay, maskable by retry so outputs must stay identical)
    or a planned node crash (the run must degrade to a structured fault
    report, never hang) — and multi-node worlds may enable quorum
    replication.  Fault-free sampling is untouched, so existing corpora
    replay identically.

    With ``include_recovery`` (requires ``include_faults``) crash worlds
    may additionally carry a :class:`RecoveryPlan`, under which the crash
    must be *masked*: the run is held to byte-identical output against the
    fault-free execution, not just graceful degradation.  All recovery
    draws are gated behind the flag, so fault corpora generated before the
    recovery tier replay identically too."""
    from repro.partition.api import PARTITIONERS
    from repro.runtime.cluster import NETWORKS

    shape = rng.choice(
        ("paper", "flat", "flat", "hetero", "hetero", "single", "wide")
    )
    if shape == "single":
        nparts, nnodes, hetero = 1, 1, False
    elif shape == "paper":
        nparts, nnodes, hetero = 2, 2, True
    elif shape == "wide":
        nparts = rng.randint(2, 4)
        nnodes = min(max_nodes, rng.choice((8, 12, 16)))
        hetero = True
    else:
        nparts = rng.randint(2, 4)
        nnodes = nparts
        hetero = shape == "hetero"
    if shape == "paper":
        speeds: Tuple[float, ...] = (1.7e9, 800e6)
    else:
        speeds = _speeds(rng, nnodes, hetero)
    backends = ["sim"]
    if include_thread and rng.random() < 0.5 and nnodes <= 8:
        backends.append("thread")
    if include_process and nnodes <= 4 and rng.random() < 0.25:
        backends.append("process")
    # gated behind its own flag (and its own rng draw only when the flag is
    # on) so corpora generated before the tcp backend replay identically
    if include_tcp and nnodes <= 4 and rng.random() < 0.25:
        backends.append("tcp")
    faults = None
    replication = 1
    if include_faults and nnodes > 1:
        roll = rng.random()
        if roll < 0.25:
            # transient-only: maskable by retry, outputs must not change
            faults = FaultPlan(
                drop_pct=rng.choice((0.02, 0.05, 0.10)),
                dup_pct=rng.choice((0.0, 0.02, 0.05)),
                delay_s=rng.choice((0.0, 1e-5, 1e-4)),
                seed=rng.randrange(1 << 30),
            )
        elif roll < 0.45:
            # a planned crash: the run must degrade, not hang
            victim = rng.randrange(nnodes)
            faults = FaultPlan(
                crashes=((victim, rng.choice((2_000, 20_000, 200_000))),),
                seed=rng.randrange(1 << 30),
            )
        if nnodes > nparts and rng.random() < 0.4:
            replication = min(rng.choice((2, 3)), nnodes)
    recovery = None
    if (
        include_recovery
        and faults is not None
        and faults.crashes
        and rng.random() < 0.7
    ):
        # pair the crash with a recovery plan: the oracle then holds the
        # run to byte-identical output, not just graceful degradation
        recovery = RecoveryPlan(
            interval=rng.choice((4_000, 16_000, 60_000)),
            heartbeat_cycles=rng.choice((150_000, 300_000)),
        )
    # the VM execution tier is an explicit world axis: half the scenarios
    # run the cluster on a forced tier so the distributed checks exercise
    # the compiled/fast/reference engines, not just the ambient default
    engine = rng.choice(
        ("default", "default", "default", "compiled", "compiled", "fast")
    )
    return WorldSpec(
        nparts=nparts,
        method=rng.choice(PARTITIONERS.names()),
        granularity="object" if rng.random() < 0.25 else "class",
        network=rng.choice(NETWORKS.names()),
        speeds=speeds,
        mem_mb=rng.choice((64, 128, 256, 512)),
        backends=tuple(backends),
        async_writes=rng.random() < 0.3,
        faults=faults,
        recovery=recovery,
        replication=replication,
        engine=engine,
    )


def degenerate_worlds() -> Tuple[WorldSpec, ...]:
    """The fixed corner cases every conformance run should cover at least
    once (tests parametrize over these directly)."""
    return (
        # 1-node: distribution must collapse to sequential semantics
        WorldSpec(nparts=1, speeds=(800e6,), backends=("sim",)),
        # the paper's exact heterogeneous testbed
        WorldSpec(nparts=2, speeds=(1.7e9, 800e6), backends=("sim", "thread")),
        # wide: 16 machines, 4 partitions, 12 idle nodes
        WorldSpec(
            nparts=4,
            speeds=tuple(SPEED_PALETTE[i % len(SPEED_PALETTE)] for i in range(16)),
            backends=("sim",),
        ),
        # slow link + fire-and-forget writes
        WorldSpec(
            nparts=2,
            network="wireless_80211b",
            speeds=(400e6, 3.2e9),
            async_writes=True,
            backends=("sim",),
        ),
        # object granularity on a 3-way split
        WorldSpec(
            nparts=3,
            granularity="object",
            method="kl",
            speeds=(1.0e9, 2.4e9, 800e6),
            backends=("sim",),
        ),
        # the paper testbed forced onto the compiled tier end to end
        WorldSpec(
            nparts=2,
            speeds=(1.7e9, 800e6),
            backends=("sim",),
            engine="compiled",
        ),
    )
