"""The golden-trace conformance corpus: save/replay for fuzz scenarios.

A corpus entry is a **self-contained** JSON file: the rendered MJ source,
the world configuration, and the reference-path observables (stdout,
result, cycles, steps, fault text) recorded when the entry was created.
Replay needs no generator state — entries stay replayable even when the
generators evolve — so every counterexample the oracle ever minimizes can
be committed under ``tests/corpus/`` and becomes a permanent regression
test (``repro fuzz --replay tests/corpus`` runs in CI).

Replaying an entry checks two things:

* **golden equivalence** — the reference interpreter still produces the
  recorded stdout/result/cycles/steps/error (``corpus.*`` divergences
  mean the VM's observable semantics or cost model drifted; regenerate
  the corpus deliberately with ``repro fuzz --save-corpus`` if the drift
  is intended);
* **conformance** — the full differential oracle still passes on the
  entry's scenario (``vm.*`` / ``dist.*`` divergences mean a live bug).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.testing.genworld import WorldSpec
from repro.testing.oracle import (
    ConformanceOutcome,
    CounterExample,
    Divergence,
    Scenario,
    check_scenario,
)

__all__ = [
    "SCHEMA_VERSION",
    "CorpusEntry",
    "entry_from_outcome",
    "entry_from_counterexample",
    "load_corpus",
    "replay_entry",
]

SCHEMA_VERSION = 1

#: golden fields compared strictly on replay, in report order
_GOLDEN_KEYS = ("error", "stdout", "result", "cycles", "steps")


@dataclass
class CorpusEntry:
    """One committed scenario with its golden reference trace."""

    name: str
    kind: str                      # "golden" | "counterexample"
    source: str
    world: Dict[str, Any]
    expected: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "name": self.name,
                "kind": self.kind,
                "world": self.world,
                "expected": self.expected,
                "meta": self.meta,
                "source": self.source,
            },
            indent=2,
            sort_keys=True,
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        data = json.loads(text)
        if not isinstance(data, dict) or "source" not in data:
            raise ReproError("corpus entry must be an object with a 'source'")
        return cls(
            name=data.get("name", "corpus-entry"),
            kind=data.get("kind", "golden"),
            source=data["source"],
            world=data.get("world", {}),
            expected=data.get("expected", {}),
            meta=data.get("meta", {}),
            schema=int(data.get("schema", SCHEMA_VERSION)),
        )

    def save(self, directory: pathlib.Path) -> pathlib.Path:
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(self.to_json())
        return path

    def scenario(self) -> Scenario:
        return Scenario(
            name=self.name,
            source=self.source,
            world=WorldSpec.from_dict(self.world),
        )


def entry_from_outcome(
    scenario: Scenario, outcome: ConformanceOutcome, meta: Optional[dict] = None
) -> CorpusEntry:
    """Package a passing scenario as a golden corpus entry."""
    return CorpusEntry(
        name=scenario.name,
        kind="golden",
        source=scenario.source,
        world=scenario.world.to_dict(),
        expected=dict(outcome.reference),
        meta=dict(meta or {}),
    )


def entry_from_counterexample(ce: CounterExample) -> CorpusEntry:
    """Package a minimized counterexample for replay/regression."""
    return CorpusEntry(
        name=ce.name,
        kind="counterexample",
        source=ce.source,
        world=dict(ce.world),
        expected=dict(ce.reference),
        meta={
            "gen_seed": ce.gen_seed,
            "gen_config": ce.gen_config,
            "divergences": [d.to_dict() for d in ce.divergences],
            "original_statements": ce.original_statements,
            "minimized_statements": ce.minimized_statements,
        },
    )


def load_corpus(path) -> List[Tuple[pathlib.Path, CorpusEntry]]:
    """Load one entry file or every ``*.json`` under a directory."""
    path = pathlib.Path(path)
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(path.glob("*.json"))
    else:
        raise ReproError(f"no corpus at {path}")
    entries = []
    for f in files:
        try:
            entries.append((f, CorpusEntry.from_json(f.read_text())))
        except (json.JSONDecodeError, ReproError) as exc:
            raise ReproError(f"bad corpus entry {f}: {exc}") from exc
    if not entries:
        raise ReproError(f"corpus at {path} holds no *.json entries")
    return entries


def replay_entry(
    entry: CorpusEntry, cache=None, deep: bool = False
) -> List[Divergence]:
    """Replay one entry: the full conformance oracle plus the golden
    comparison against the oracle's own reference-path observation (one
    compile, one pair of VM runs).  Returns every divergence found
    (empty = the entry still passes)."""
    outcome = check_scenario(entry.scenario(), cache=cache, deep=deep)
    divergences: List[Divergence] = list(outcome.divergences)
    ref = outcome.reference
    for key in _GOLDEN_KEYS:
        if key in entry.expected and entry.expected[key] != ref.get(key):
            divergences.append(
                Divergence(
                    f"corpus.{key}",
                    f"{entry.name}: golden {key} drifted (regenerate the "
                    f"corpus if this change is intended)",
                    expected=entry.expected[key],
                    actual=ref.get(key),
                )
            )
    return divergences
