"""``repro.testing`` — the scenario fuzzing & conformance subsystem.

Four layers, composable from tests, the :class:`~repro.api.Experiment` API
(``Experiment.conformance()``) and the ``repro fuzz`` CLI:

* :mod:`repro.testing.seeds`    — the one ``REPRO_TEST_SEED`` knob every
  randomized test, bench and fuzzer derives from;
* :mod:`repro.testing.genprog`  — seeded, size-parameterized, *shrinkable*
  multi-class MJ program generation;
* :mod:`repro.testing.genworld` — seeded cluster/network/partitioner/
  backend configuration generation (degenerate 1-node up to wide 16-node
  heterogeneous topologies);
* :mod:`repro.testing.oracle`   — the cross-backend differential
  conformance oracle with minimized, replayable counterexamples;
* :mod:`repro.testing.corpus`   — the golden-trace corpus under
  ``tests/corpus/``: every past counterexample is a permanent regression
  test (``repro fuzz --replay tests/corpus``).
"""

from repro.testing.seeds import (  # noqa: F401
    DEFAULT_SEED,
    ENV_VAR,
    base_seed,
    derive_seed,
)
from repro.testing.genprog import (  # noqa: F401
    ARRAY_LEN,
    GenConfig,
    ProgramSpec,
    generate_program,
    generate_source,
    shrink_program,
)
from repro.testing.genworld import (  # noqa: F401
    SPEED_PALETTE,
    WorldSpec,
    degenerate_worlds,
    generate_world,
)
from repro.testing.oracle import (  # noqa: F401
    ConformanceOutcome,
    ConformanceReport,
    CounterExample,
    Divergence,
    Scenario,
    check_experiment,
    check_scenario,
    minimize_scenario,
    observe_vm,
    run_fuzz,
    temp_workload,
)
from repro.testing.corpus import (  # noqa: F401
    CorpusEntry,
    entry_from_counterexample,
    entry_from_outcome,
    load_corpus,
    replay_entry,
)

__all__ = [
    "ARRAY_LEN",
    "ConformanceOutcome",
    "ConformanceReport",
    "CorpusEntry",
    "CounterExample",
    "DEFAULT_SEED",
    "Divergence",
    "ENV_VAR",
    "GenConfig",
    "ProgramSpec",
    "Scenario",
    "SPEED_PALETTE",
    "WorldSpec",
    "base_seed",
    "check_experiment",
    "check_scenario",
    "degenerate_worlds",
    "derive_seed",
    "entry_from_counterexample",
    "entry_from_outcome",
    "generate_program",
    "generate_source",
    "generate_world",
    "load_corpus",
    "minimize_scenario",
    "observe_vm",
    "replay_entry",
    "run_fuzz",
    "shrink_program",
    "temp_workload",
]
