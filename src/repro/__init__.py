"""repro — a reproduction of *A Compiler and Runtime Infrastructure for
Automatic Program Distribution* (Diaconescu, Wang, Mouri & Chu, IPPS 2005).

:mod:`repro.api` is the public programmatic entry point — typed configs,
the composable :class:`~repro.api.experiment.Experiment` façade, unified
plugin registries, stage events and structured reports; see README.md
("Public API") and ``examples/api_quickstart.py``.  The legacy
:mod:`repro.harness.pipeline` driver remains as a deprecation shim over
the same engine.

Layers (bottom-up):

* ``repro.lang`` / ``repro.bytecode`` / ``repro.vm`` — the MJ language
  substrate (Java stand-in) and its virtual machine;
* ``repro.quad`` — register-style quad IR (Joeq stand-in);
* ``repro.analysis`` — RTA call graph, class relation graph, object
  dependence graph, resource modeling;
* ``repro.graph`` / ``repro.partition`` — weighted graphs and the
  from-scratch multilevel multi-constraint partitioner (Metis stand-in);
* ``repro.codegen`` — BURS retargetable back-ends (x86, StrongARM);
* ``repro.distgen`` — dependence classification and communication
  generation (bytecode rewriting);
* ``repro.runtime`` — simulated cluster, MPI service, message exchange;
* ``repro.profiler`` — instrumentation & sampling profiler;
* ``repro.workloads`` / ``repro.harness`` — benchmark programs and the
  table/figure reproduction harness.
"""

__version__ = "1.0.0"


def compile_source(source: str):
    """Convenience one-shot: MJ source text -> loaded, runnable program."""
    from repro.lang import analyze, parse_program
    from repro.bytecode import compile_program
    from repro.vm import load_program

    program = parse_program(source)
    table = analyze(program)
    bprogram = compile_program(program, table)
    return load_program(bprogram)
