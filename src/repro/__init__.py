"""repro — a reproduction of *A Compiler and Runtime Infrastructure for
Automatic Program Distribution* (Diaconescu, Wang, Mouri & Chu, IPPS 2005).

The top-level package re-exports the high-level pipeline API; see
:mod:`repro.harness.pipeline` for the end-to-end driver and README.md for a
tour.

Layers (bottom-up):

* ``repro.lang`` / ``repro.bytecode`` / ``repro.vm`` — the MJ language
  substrate (Java stand-in) and its virtual machine;
* ``repro.quad`` — register-style quad IR (Joeq stand-in);
* ``repro.analysis`` — RTA call graph, class relation graph, object
  dependence graph, resource modeling;
* ``repro.graph`` / ``repro.partition`` — weighted graphs and the
  from-scratch multilevel multi-constraint partitioner (Metis stand-in);
* ``repro.codegen`` — BURS retargetable back-ends (x86, StrongARM);
* ``repro.distgen`` — dependence classification and communication
  generation (bytecode rewriting);
* ``repro.runtime`` — simulated cluster, MPI service, message exchange;
* ``repro.profiler`` — instrumentation & sampling profiler;
* ``repro.workloads`` / ``repro.harness`` — benchmark programs and the
  table/figure reproduction harness.
"""

__version__ = "1.0.0"


def compile_source(source: str):
    """Convenience one-shot: MJ source text -> loaded, runnable program."""
    from repro.lang import analyze, parse_program
    from repro.bytecode import compile_program
    from repro.vm import load_program

    program = parse_program(source)
    table = analyze(program)
    bprogram = compile_program(program, table)
    return load_program(bprogram)
