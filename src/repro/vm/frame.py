"""Activation frames for the MJ interpreter."""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.model import BMethod, FlatCode


class Frame:
    """One activation: method, pc into the flat code, locals and operand
    stack.  ``on_return`` (if set) intercepts the return value instead of
    pushing it to a caller frame — used for service-initiated calls."""

    __slots__ = ("method", "flat", "pc", "locals", "stack", "on_return")

    def __init__(self, method: BMethod, nlocals: int) -> None:
        self.method = method
        self.flat: FlatCode = method.flat()
        self.pc = 0
        self.locals: List[object] = [None] * max(nlocals, 1)
        self.stack: List[object] = []
        self.on_return = None

    def push(self, value) -> None:
        self.stack.append(value)

    def pop(self):
        return self.stack.pop()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Frame {self.method.qualified} pc={self.pc}>"
