"""The compiled execution tier: superinstruction fusion + trace-compiled
hot blocks.

This is the third engine behind :meth:`Machine.drive` (the other two are
the per-step reference path and the threaded-code ``run_block`` fast
path).  It works at the granularity of **runs**: maximal stretches of
fusible, syscall-free instructions inside one basic block of a method's
:class:`~repro.bytecode.model.FlatCode`.

Two levels, applied per run:

* **Superinstructions** — every run is immediately replaced by a single
  composite handler, ``exec``-generated from per-opcode templates and
  cached globally keyed by the interned ``Instr.opx`` sequence, so two
  methods containing the same opcode shape share one compiled function.
  Operands are fetched from the run's instruction tuple at execution
  time, which is what makes the sharing sound.
* **Trace compilation** — each run counts its executions; past a hotness
  threshold (``REPRO_VM_JIT_THRESHOLD``) the run is lowered through the
  :mod:`repro.codegen.tree` / :mod:`repro.codegen.burs` machinery (the
  paper's JBurg stage) against the Python expression target
  (:mod:`repro.codegen.pytarget`) into a closure that collapses whole
  expression chains — constants folded, operand stack virtualized away —
  operating directly on frame locals.

Both levels share one **deopt contract**: every faultable operation
(division, heap access, array indexing, field lookup) is *guarded* — it
checks its operands by peeking before mutating anything, and on guard
failure the compiled function returns the index of the offending
instruction with the stack and locals exactly as if all earlier
instructions had run and the offender had not.  The engine then charges
the completed prefix and re-executes that one instruction through its
plain threaded-code handler, which raises the precise ``VMError`` (or
performs the remote-object syscall) the reference path would.  Cycle
accounting stays integer-exact: ``run.cost``/``run.prefix`` are sums of
``Instr.cost``, so cycles, steps, NodeStats and fault text are
bit-identical across all three tiers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError, VMError
from repro.bytecode import opcodes as op
from repro.codegen.pytarget import lower_py
from repro.codegen.tree import TreeNode
from repro.lang.symbols import DEPENDENT_OBJECT
from repro.lang.types import VOID
from repro.vm.dispatch import FRAME_SWITCH, HANDLERS, INVOKE_HANDLER
from repro.vm.heap import HeapArray, HeapObject
from repro.vm.values import Ref, i32, i64, idiv, irem, iushr

__all__ = [
    "JIT_THRESHOLD",
    "jit_threshold",
    "Run",
    "build_fused",
    "run_block_compiled",
    "plan_runs",
]

#: executions of a run before it is trace-compiled (``REPRO_VM_JIT_THRESHOLD``)
JIT_THRESHOLD = int(os.environ.get("REPRO_VM_JIT_THRESHOLD", "16") or "16")


@contextmanager
def jit_threshold(n: int):
    """Temporarily set the trace-compilation hotness threshold — in this
    process and, via ``REPRO_VM_JIT_THRESHOLD``, in spawned workers.
    Affects plans built inside the block (the threshold is baked into each
    :class:`Run` when its method's plan is constructed)."""
    global JIT_THRESHOLD
    prev, prev_env = JIT_THRESHOLD, os.environ.get("REPRO_VM_JIT_THRESHOLD")
    JIT_THRESHOLD = int(n)
    os.environ["REPRO_VM_JIT_THRESHOLD"] = str(int(n))
    try:
        yield
    finally:
        JIT_THRESHOLD = prev
        if prev_env is None:
            os.environ.pop("REPRO_VM_JIT_THRESHOLD", None)
        else:
            os.environ["REPRO_VM_JIT_THRESHOLD"] = prev_env


#: sentinel distinguishing "field absent" from a stored ``None``
_MISS = object()


class Run:
    """One fused run: ``instrs[start:end]`` of a method's flat code.

    ``fn(machine, frame, instrs)`` executes the whole run (the engine has
    already set ``frame.pc = end``; a taken terminal branch overwrites it)
    and returns ``None`` on completion or the relative index of the
    instruction whose guard failed (deopt).  ``prefix[k]`` is the cycle
    cost of the first ``k`` instructions, for exact deopt charging.
    """

    __slots__ = (
        "start", "end", "instrs", "n", "cost", "prefix",
        "fn", "count", "threshold", "promoted", "compiled", "region",
    )

    def __init__(self, start: int, end: int, instrs: Tuple, fn,
                 threshold: int) -> None:
        self.start = start
        self.end = end
        self.instrs = instrs
        self.n = end - start
        costs = [i.cost for i in instrs]
        self.cost = sum(costs)
        prefix, total = [], 0
        for c in costs:
            prefix.append(total)
            total += c
        self.prefix = tuple(prefix)
        self.fn = fn
        self.count = 0
        self.threshold = threshold
        self.promoted = False
        self.compiled = False
        #: promoted form is a loop-region closure: ``fn`` then returns
        #: ``(exit_pc, steps, cycles, deopt)`` instead of the run protocol
        self.region = False


# --------------------------------------------------------------------------
# fusibility + superinstruction templates
# --------------------------------------------------------------------------

_INT_BIN_SYM = {op.IADD: "+", op.ISUB: "-", op.IMUL: "*",
                op.IAND: "&", op.IOR: "|", op.IXOR: "^"}
_LONG_BIN_SYM = {op.LADD: "+", op.LSUB: "-", op.LMUL: "*",
                 op.LAND: "&", op.LOR: "|", op.LXOR: "^"}
_FLOAT_BIN_SYM = {op.FADD: "+", op.FSUB: "-", op.FMUL: "*"}

_SIMPLE = (
    frozenset({
        op.LDC, op.ACONST_NULL, op.DUP, op.POP, op.SWAP,
        op.GETSTATIC, op.PUTSTATIC,
        op.INEG, op.LNEG, op.FNEG,
        op.I2L, op.I2F, op.L2F, op.L2I, op.F2I, op.F2L,
        op.ISHL, op.ISHR, op.IUSHR, op.LSHL, op.LSHR, op.LUSHR,
    })
    | op.LOADS | op.STORES
    | frozenset(_INT_BIN_SYM) | frozenset(_LONG_BIN_SYM)
    | frozenset(_FLOAT_BIN_SYM)
)
_GUARDED = frozenset({
    op.IDIV, op.IREM, op.LDIV, op.LREM, op.FDIV, op.FREM,
    op.GETFIELD, op.PUTFIELD, op.XALOAD, op.XASTORE, op.ARRAYLENGTH,
})
_PLAIN_BRANCHES = frozenset({op.GOTO, op.IFTRUE, op.IFFALSE})


def _fusible(ins) -> bool:
    o = ins.op
    if o in _SIMPLE or o in _GUARDED or o in _PLAIN_BRANCHES:
        return True
    # compare-branches fuse only once their condition callable is resolved
    # (an unresolved condition must keep raising through the plain handler)
    return o in op.CMP_BRANCHES and ins.cfn is not None


def _super_lines(name: str, k: int) -> List[str]:
    """Template body for one opcode at run-relative index ``k``.  Guarded
    opcodes peek operands, ``return k`` on guard failure (stack/locals
    untouched by this instruction), and only then mutate."""
    if name == op.LDC:
        return [f"s.append(I[{k}].a)"]
    if name == op.ACONST_NULL:
        return ["s.append(None)"]
    if name in op.LOADS:
        return [f"s.append(L[I[{k}].a])"]
    if name in op.STORES:
        return [f"L[I[{k}].a] = s.pop()"]
    if name == op.DUP:
        return ["s.append(s[-1])"]
    if name == op.POP:
        return ["del s[-1]"]
    if name == op.SWAP:
        return ["s[-1], s[-2] = s[-2], s[-1]"]
    if name in _INT_BIN_SYM:
        return ["b = s.pop()", f"s[-1] = i32(s[-1] {_INT_BIN_SYM[name]} b)"]
    if name in _LONG_BIN_SYM:
        return ["b = s.pop()", f"s[-1] = i64(s[-1] {_LONG_BIN_SYM[name]} b)"]
    if name in _FLOAT_BIN_SYM:
        return ["b = s.pop()", f"s[-1] = s[-1] {_FLOAT_BIN_SYM[name]} b"]
    if name == op.ISHL:
        return ["b = s.pop()", "s[-1] = i32(s[-1] << (b & 31))"]
    if name == op.ISHR:
        return ["b = s.pop()", "s[-1] = i32(s[-1] >> (b & 31))"]
    if name == op.IUSHR:
        return ["b = s.pop()", "s[-1] = iushr(s[-1], b, 32)"]
    if name == op.LSHL:
        return ["b = s.pop()", "s[-1] = i64(s[-1] << (b & 63))"]
    if name == op.LSHR:
        return ["b = s.pop()", "s[-1] = i64(s[-1] >> (b & 63))"]
    if name == op.LUSHR:
        return ["b = s.pop()", "s[-1] = iushr(s[-1], b, 64)"]
    if name == op.IDIV or name == op.IREM:
        fn = "idiv" if name == op.IDIV else "irem"
        return ["b = s[-1]", "if b == 0:", f"    return {k}",
                "del s[-1]", f"s[-1] = i32({fn}(s[-1], b))"]
    if name == op.LDIV or name == op.LREM:
        fn = "idiv" if name == op.LDIV else "irem"
        return ["b = s[-1]", "if b == 0:", f"    return {k}",
                "del s[-1]", f"s[-1] = i64({fn}(s[-1], b))"]
    if name == op.FDIV:
        return ["b = s[-1]", "if b == 0.0:", f"    return {k}",
                "del s[-1]", "s[-1] = s[-1] / b"]
    if name == op.FREM:
        return ["b = s[-1]", "if b == 0.0:", f"    return {k}",
                "del s[-1]", "a = s[-1]", "s[-1] = a - b * int(a / b)"]
    if name == op.INEG:
        return ["s[-1] = i32(-s[-1])"]
    if name == op.LNEG:
        return ["s[-1] = i64(-s[-1])"]
    if name == op.FNEG:
        return ["s[-1] = -s[-1]"]
    if name == op.I2L:
        return ["s[-1] = i64(s[-1])"]
    if name == op.I2F or name == op.L2F:
        return ["s[-1] = float(s[-1])"]
    if name == op.L2I:
        return ["s[-1] = i32(s[-1])"]
    if name == op.F2I:
        return ["s[-1] = i32(int(s[-1]))"]
    if name == op.F2L:
        return ["s[-1] = i64(int(s[-1]))"]
    if name == op.GETSTATIC:
        return [f"s.append(S.get((I[{k}].a, I[{k}].b)))"]
    if name == op.PUTSTATIC:
        return [f"S[(I[{k}].a, I[{k}].b)] = s.pop()"]
    if name == op.GETFIELD:
        return [
            "r = s[-1]",
            "if r.__class__ is not Ref:", f"    return {k}",
            "o = H.get(r.oid)",
            "if o.__class__ is not HeapObject:", f"    return {k}",
            f"v = o.fields.get(I[{k}].b, _MISS)",
            "if v is _MISS:", f"    return {k}",
            "s[-1] = v",
        ]
    if name == op.PUTFIELD:
        return [
            "r = s[-2]",
            "if r.__class__ is not Ref:", f"    return {k}",
            "o = H.get(r.oid)",
            "if o.__class__ is not HeapObject:", f"    return {k}",
            f"if I[{k}].b not in o.fields:", f"    return {k}",
            f"o.fields[I[{k}].b] = s[-1]",
            "del s[-2:]",
        ]
    if name == op.ARRAYLENGTH:
        return [
            "r = s[-1]",
            "if r.__class__ is not Ref:", f"    return {k}",
            "o = H.get(r.oid)",
            "if o.__class__ is not HeapArray:", f"    return {k}",
            "s[-1] = len(o.data)",
        ]
    if name == op.XALOAD:
        return [
            "r = s[-2]",
            "if r.__class__ is not Ref:", f"    return {k}",
            "o = H.get(r.oid)",
            "if o.__class__ is not HeapArray:", f"    return {k}",
            "d = o.data",
            "x = s[-1]",
            "if not 0 <= x < len(d):", f"    return {k}",
            "del s[-1]",
            "s[-1] = d[x]",
        ]
    if name == op.XASTORE:
        return [
            "r = s[-3]",
            "if r.__class__ is not Ref:", f"    return {k}",
            "o = H.get(r.oid)",
            "if o.__class__ is not HeapArray:", f"    return {k}",
            "d = o.data",
            "x = s[-2]",
            "if not 0 <= x < len(d):", f"    return {k}",
            "d[x] = s[-1]",
            "del s[-3:]",
        ]
    if name == op.GOTO:
        return [f"f.pc = I[{k}].a"]
    if name in op.CMP_BRANCHES:
        return ["b = s.pop()", "a = s.pop()",
                f"if I[{k}].cfn(a, b):", f"    f.pc = I[{k}].b"]
    if name == op.IFTRUE:
        return ["if s.pop():", f"    f.pc = I[{k}].a"]
    if name == op.IFFALSE:
        return ["if not s.pop():", f"    f.pc = I[{k}].a"]
    raise CodegenError(f"no superinstruction template for {name}")


def _needs(names) -> Tuple[bool, bool]:
    heap = any(n in (op.GETFIELD, op.PUTFIELD, op.XALOAD, op.XASTORE,
                     op.ARRAYLENGTH) for n in names)
    statics = any(n in (op.GETSTATIC, op.PUTSTATIC) for n in names)
    return heap, statics


_EXEC_GLOBALS = {
    "i32": i32, "i64": i64, "idiv": idiv, "irem": irem, "iushr": iushr,
    "Ref": Ref, "HeapObject": HeapObject, "HeapArray": HeapArray,
    "_MISS": _MISS, "_aeq": op.ACMP_FUNCS["EQ"],
    "len": len, "int": int, "float": float,
}

#: superinstruction cache: interned opcode sequence -> compiled handler
_SUPER_CACHE: Dict[Tuple[int, ...], object] = {}


def super_cache_size() -> int:
    return len(_SUPER_CACHE)


def _assemble(fname: str, body: List[str], tag: str):
    src = f"def {fname}(m, f, I):\n" + "\n".join("    " + ln for ln in body)
    g = dict(_EXEC_GLOBALS)
    exec(compile(src, f"<repro-jit:{tag}>", "exec"), g)
    fn = g[fname]
    fn.__doc__ = src  # keep the source inspectable for tests / debugging
    return fn


def _compile_super(instrs: Tuple):
    names = [i.op for i in instrs]
    heap, statics = _needs(names)
    body = ["s = f.stack", "L = f.locals"]
    if heap:
        body.append("H = m.heap._store")
    if statics:
        body.append("S = m.statics")
    for k, name in enumerate(names):
        body.extend(_super_lines(name, k))
    return _assemble("_super", body, "+".join(names))


# --------------------------------------------------------------------------
# plan construction
# --------------------------------------------------------------------------

def build_fused(flat):
    """Build (and cache on ``flat.fused``) the compiled-tier execution plan:
    one entry per instruction — a :class:`Run` at each run start, the plain
    ``(handler, instr)`` pair everywhere else.  Interior positions stay
    individually executable because deopt resumes there."""
    thr = flat.threaded
    if thr is None:
        thr = flat.threaded = [(HANDLERS[i.opx], i) for i in flat.instrs]
    plan = list(thr)
    instrs = flat.instrs
    threshold = JIT_THRESHOLD
    for a, b in flat.basic_blocks():
        j = a
        while j < b:
            if not _fusible(instrs[j]):
                j += 1
                continue
            start = j
            while j < b and _fusible(instrs[j]):
                j += 1
            if j - start >= 2:
                seq = tuple(instrs[start:j])
                key = tuple(i.opx for i in seq)
                fn = _SUPER_CACHE.get(key)
                if fn is None:
                    fn = _SUPER_CACHE[key] = _compile_super(seq)
                plan[start] = Run(start, j, seq, fn, threshold)
    flat.fused = plan
    return plan


def plan_runs(flat) -> List[Run]:
    """The fused runs of one method's plan (building it if necessary) —
    the per-block observability hook behind the jit profiler surface."""
    plan = flat.fused
    if plan is None:
        plan = build_fused(flat)
    return [e for e in plan if e.__class__ is Run]


# --------------------------------------------------------------------------
# trace compiler: run -> exec-compiled closure via tree/BURS lowering
# --------------------------------------------------------------------------

_TREE_BIN = {
    op.IADD: "ADD_I", op.ISUB: "SUB_I", op.IMUL: "MUL_I",
    op.IAND: "AND_I", op.IOR: "OR_I", op.IXOR: "XOR_I",
    op.ISHL: "SHL_I", op.ISHR: "SHR_I", op.IUSHR: "USHR_I",
    op.LADD: "ADD_L", op.LSUB: "SUB_L", op.LMUL: "MUL_L",
    op.LAND: "AND_L", op.LOR: "OR_L", op.LXOR: "XOR_L",
    op.LSHL: "SHL_L", op.LSHR: "SHR_L", op.LUSHR: "USHR_L",
    op.FADD: "ADD_F", op.FSUB: "SUB_F", op.FMUL: "MUL_F",
}
_TREE_DIV = {
    op.IDIV: ("DIV_I", "0"), op.IREM: ("REM_I", "0"),
    op.LDIV: ("DIV_L", "0"), op.LREM: ("REM_L", "0"),
    op.FDIV: ("DIV_F", "0.0"), op.FREM: ("REM_F", "0.0"),
}
_TREE_NEG = {op.INEG: "NEG_I", op.LNEG: "NEG_L", op.FNEG: "NEG_F"}
_TREE_CONV = frozenset({op.I2L, op.I2F, op.L2F, op.L2I, op.F2I, op.F2L})
_CONST_FOR = {"I": "ICONST", "J": "LCONST", "F": "FCONST", "S": "SCONST",
              "N": "NULL"}
_CMP_SYM = {"EQ": "==", "NE": "!=", "LT": "<", "LE": "<=",
            "GT": ">", "GE": ">="}
_CONSTABLE = (int, float, str, bool, type(None))

#: materialize pure subtrees past this node count (bounds expression size)
_MAX_TREE = 24


def _tree_size(nd: TreeNode) -> int:
    return 1 + sum(_tree_size(k) for k in nd.kids)


def _local_slots(nd: TreeNode, out: set) -> set:
    if nd.op == "LOCAL":
        out.add(nd.value)
    for k in nd.kids:
        _local_slots(k, out)
    return out


class _TraceCompiler:
    """Symbolic re-execution of one run: the operand stack is virtualized
    into a stack of operator trees (``vstack``); pure computation defers as
    trees (lowered through BURS on demand), effectful or guarded operations
    materialize in program order.  At any deopt point the real operand
    stack is reconstructed exactly — remaining virtual entries first, then
    the peeked operands of the failing instruction."""

    def __init__(self, run: Optional[Run] = None) -> None:
        self.run = run
        self.lines: List[str] = []
        self.vstack: List[TreeNode] = []
        self.ntemp = 0
        self.needs_heap = False
        self.needs_statics = False
        #: lines emitted (indented under the failing guard) to leave the
        #: compiled code at relative instruction index ``k``; the run form
        #: returns the deopt index, the region form a full exit tuple
        self.deopt_tail = lambda k: [f"return {k}"]
        #: inlined-callee mode: ``ilocals`` maps callee local slots to
        #: write-once temps, ``inline_pushback`` restores the receiver and
        #: argument operands of the call on deopt (the callee is pure, so
        #: its partial work is simply dropped and the plain ``INVOKE``
        #: re-executes it from scratch)
        self.ilocals: Optional[List[str]] = None
        self.inline_pushback: Optional[List[str]] = None

    # ------------------------------------------------------------- helpers
    def temp(self) -> str:
        self.ntemp += 1
        return f"t{self.ntemp}"

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def _materialized(self, nd: TreeNode) -> TreeNode:
        if nd.op == "TEMP":
            return nd
        t = self.temp()
        self.emit(f"{t} = {lower_py(nd)}")
        return TreeNode("TEMP", value=t)

    def need(self, k: int) -> None:
        # pull real-stack values under the virtual entries (deepest last,
        # inserted at the bottom so combined order is preserved)
        while len(self.vstack) < k:
            t = self.temp()
            self.emit(f"{t} = s.pop()")
            self.vstack.insert(0, TreeNode("TEMP", value=t))

    def pop(self) -> TreeNode:
        self.need(1)
        return self.vstack.pop()

    def pop_temp(self) -> str:
        return self._materialized(self.pop()).value

    def push(self, nd: TreeNode) -> None:
        if _tree_size(nd) > _MAX_TREE:
            nd = self._materialized(nd)
        self.vstack.append(nd)

    def guard(self, cond: str, k: int, operands: List[str]) -> None:
        """Emit ``if cond: <rebuild stack>; <deopt>``.  In inlined-callee
        mode the callee's virtual stack is dropped (the callee is pure)
        and the call's own operands are restored instead."""
        self.emit(f"if {cond}:")
        if self.inline_pushback is not None:
            for ln in self.inline_pushback:
                self.emit("    " + ln)
        else:
            for nd in self.vstack:
                self.emit(f"    s.append({lower_py(nd)})")
            for t in operands:
                self.emit(f"    s.append({t})")
        for ln in self.deopt_tail(k):
            self.emit("    " + ln)

    def flush(self) -> None:
        for nd in self.vstack:
            self.emit(f"s.append({lower_py(nd)})")
        self.vstack.clear()

    def _heap_object(self, k: int, r: str, cls: str,
                     operands: List[str]) -> str:
        self.needs_heap = True
        self.guard(f"{r}.__class__ is not Ref", k, operands)
        o = self.temp()
        self.emit(f"{o} = H.get({r}.oid)")
        self.guard(f"{o}.__class__ is not {cls}", k, operands)
        return o

    # ------------------------------------------------------ per instruction
    def compile_ins(self, ins, k: int) -> None:
        name = ins.op
        if name == op.LDC:
            if not isinstance(ins.a, _CONSTABLE):
                raise CodegenError(f"unconstable LDC operand {ins.a!r}")
            self.push(TreeNode(_CONST_FOR.get(ins.b, "ICONST"), value=ins.a))
        elif name == op.ACONST_NULL:
            self.push(TreeNode("NULL", value=None))
        elif name in op.LOADS:
            if self.ilocals is not None:
                self.push(TreeNode("TEMP", value=self.ilocals[ins.a]))
            else:
                self.push(TreeNode("LOCAL", value=ins.a))
        elif name in op.STORES:
            if self.ilocals is not None:
                # callee locals are write-once temps (SSA-style), so trees
                # already referencing the old temp stay valid
                val = self.pop()
                t = self.temp()
                self.emit(f"{t} = {lower_py(val)}")
                self.ilocals[ins.a] = t
                return
            val = self.pop()
            # aliasing: any deferred tree reading this slot must evaluate
            # against the *old* value, so materialize it first
            for i, nd in enumerate(self.vstack):
                if nd.op != "TEMP" and ins.a in _local_slots(nd, set()):
                    self.vstack[i] = self._materialized(nd)
            self.emit(f"L[{ins.a}] = {lower_py(val)}")
        elif name == op.DUP:
            self.need(1)
            nd = self._materialized(self.vstack[-1])
            self.vstack[-1] = nd
            self.vstack.append(TreeNode("TEMP", value=nd.value))
        elif name == op.POP:
            self.pop()
        elif name == op.SWAP:
            self.need(2)
            self.vstack[-1], self.vstack[-2] = self.vstack[-2], self.vstack[-1]
        elif name in _TREE_BIN:
            b = self.pop()
            a = self.pop()
            self.push(TreeNode(_TREE_BIN[name], kids=[a, b]))
        elif name in _TREE_NEG:
            self.push(TreeNode(_TREE_NEG[name], kids=[self.pop()]))
        elif name in _TREE_CONV:
            self.push(TreeNode(name, kids=[self.pop()]))
        elif name in _TREE_DIV:
            root, zero = _TREE_DIV[name]
            b = self.pop()
            a = self.pop()
            ta = self._materialized(a).value
            tb = self._materialized(b).value
            self.guard(f"{tb} == {zero}", k, [ta, tb])
            self.push(TreeNode(root, kids=[TreeNode("TEMP", value=ta),
                                           TreeNode("TEMP", value=tb)]))
        elif name == op.GETSTATIC:
            self.needs_statics = True
            t = self.temp()
            self.emit(f"{t} = S.get(({ins.a!r}, {ins.b!r}))")
            self.vstack.append(TreeNode("TEMP", value=t))
        elif name == op.PUTSTATIC:
            self.needs_statics = True
            val = self.pop()
            self.emit(f"S[({ins.a!r}, {ins.b!r})] = {lower_py(val)}")
        elif name == op.GETFIELD:
            r = self.pop_temp()
            o = self._heap_object(k, r, "HeapObject", [r])
            v = self.temp()
            self.emit(f"{v} = {o}.fields.get({ins.b!r}, _MISS)")
            self.guard(f"{v} is _MISS", k, [r])
            self.vstack.append(TreeNode("TEMP", value=v))
        elif name == op.PUTFIELD:
            val = self.pop()
            r = self.pop_temp()
            v = self._materialized(val).value
            o = self._heap_object(k, r, "HeapObject", [r, v])
            self.guard(f"{ins.b!r} not in {o}.fields", k, [r, v])
            self.emit(f"{o}.fields[{ins.b!r}] = {v}")
        elif name == op.ARRAYLENGTH:
            r = self.pop_temp()
            o = self._heap_object(k, r, "HeapArray", [r])
            t = self.temp()
            self.emit(f"{t} = len({o}.data)")
            self.vstack.append(TreeNode("TEMP", value=t))
        elif name == op.XALOAD:
            xi = self.pop_temp()
            r = self.pop_temp()
            o = self._heap_object(k, r, "HeapArray", [r, xi])
            d = self.temp()
            self.emit(f"{d} = {o}.data")
            self.guard(f"not 0 <= {xi} < len({d})", k, [r, xi])
            t = self.temp()
            self.emit(f"{t} = {d}[{xi}]")
            self.vstack.append(TreeNode("TEMP", value=t))
        elif name == op.XASTORE:
            val = self.pop()
            xi = self.pop_temp()
            r = self.pop_temp()
            v = self._materialized(val).value
            o = self._heap_object(k, r, "HeapArray", [r, xi, v])
            d = self.temp()
            self.emit(f"{d} = {o}.data")
            self.guard(f"not 0 <= {xi} < len({d})", k, [r, xi, v])
            self.emit(f"{d}[{xi}] = {v}")
        elif name == op.GOTO:
            self.flush()
            self.emit(f"f.pc = {ins.a}")
        elif name in op.CMP_BRANCHES:
            b = self.pop()
            a = self.pop()
            ea, eb = lower_py(a), lower_py(b)
            self.flush()
            if name == op.IF_ACMP:
                cond = f"_aeq({ea}, {eb})"
                if ins.a != "EQ":
                    cond = f"not {cond}"
            else:
                sym = _CMP_SYM.get(ins.a)
                if sym is None:
                    raise CodegenError(f"uncompilable condition {ins.a!r}")
                cond = f"({ea}) {sym} ({eb})"
            self.emit(f"if {cond}:")
            self.emit(f"    f.pc = {ins.b}")
        elif name == op.IFTRUE or name == op.IFFALSE:
            c = lower_py(self.pop())
            self.flush()
            cond = f"({c})" if name == op.IFTRUE else f"not ({c})"
            self.emit(f"if {cond}:")
            self.emit(f"    f.pc = {ins.a}")
        else:
            raise CodegenError(f"untraceable opcode {name}")

    # --------------------------------------------------------------- driver
    def compile(self):
        for k, ins in enumerate(self.run.instrs):
            self.compile_ins(ins, k)
        self.flush()
        body = ["s = f.stack", "L = f.locals"]
        if self.needs_heap:
            body.append("H = m.heap._store")
        if self.needs_statics:
            body.append("S = m.statics")
        body.extend(self.lines)
        first = self.run.instrs[0]
        return _assemble("_trace", body, f"trace@{self.run.start}:{first.op}")


# --------------------------------------------------------------------------
# loop regions: whole syscall-free loops compiled into one closure
# --------------------------------------------------------------------------

#: bound on loop-region size (instructions) — keeps exec-compile time flat
_MAX_REGION = 1024

#: bound on inlined-callee size (instructions)
_INLINE_MAX = 40


def _stack_effect(name: str):
    """``(pops, pushes)`` of one *pure* traceable opcode, or ``None`` for
    anything a pure leaf callee may not contain (mutators, branches,
    calls).  Used to prove an inline candidate never touches its caller's
    operand stack and exits with exactly its return value."""
    if name == op.LDC or name == op.ACONST_NULL or name in op.LOADS \
            or name == op.GETSTATIC:
        return (0, 1)
    if name == op.DUP:
        return (1, 2)
    if name == op.POP or name in op.STORES:
        return (1, 0)
    if name == op.SWAP:
        return (2, 2)
    if name in _TREE_BIN or name in _TREE_DIV or name == op.XALOAD:
        return (2, 1)
    if name in _TREE_NEG or name in _TREE_CONV \
            or name == op.GETFIELD or name == op.ARRAYLENGTH:
        return (1, 1)
    return None


def _inline_target(program, ins):
    """The pure leaf method a region may inline at this call site, or
    ``None``.  Eligible: ``INVOKEVIRTUAL``/``INVOKESTATIC`` resolving to a
    bytecode method (no natives) whose body is straight-line, side-effect
    free (reads only), single-exit, and provably stack-disciplined — so a
    failed guard anywhere inside can deopt to the call instruction itself
    and re-execute through the reference path with nothing to undo."""
    o = ins.op
    if program is None or (o != op.INVOKEVIRTUAL and o != op.INVOKESTATIC):
        return None
    if ins.a == DEPENDENT_OBJECT:
        return None
    method = program.lookup_method(ins.a, ins.b)
    if method is None or method.is_ctor:
        return None
    nargs = ins.c or 0
    if nargs != method.nargs or method.is_static != (o == op.INVOKESTATIC):
        return None
    body = method.flat().instrs
    if not 1 <= len(body) <= _INLINE_MAX:
        return None
    last = body[-1]
    if last.op not in op.RETURNS:
        return None
    void = last.op == op.RETURN
    if void != (method.ret_type is VOID):
        return None
    depth = 0
    for b in body[:-1]:
        eff = _stack_effect(b.op)
        if eff is None:
            return None
        if b.op == op.LDC and not isinstance(b.a, _CONSTABLE):
            return None
        pops, pushes = eff
        if depth < pops:
            return None
        depth += pushes - pops
    if depth != (0 if void else 1):
        return None
    return method


def _find_region(flat, start: int, program=None):
    """Connected component of fully-fusible basic blocks reachable from
    ``start``, provided some branch inside it loops back (target at or
    before its own block — i.e. the component contains a syscall-free
    loop).  Edges to non-fusible blocks become clean region exits, so a
    loop whose body calls a method still compiles everything around the
    call; a block ending in a call to a pure leaf method (see
    :func:`_inline_target`) is itself included, the callee inlined behind
    a receiver-class guard.  Returns the sorted list of ``(a, b)`` block
    ranges, or ``None`` when the shape does not apply."""
    instrs = flat.instrs
    bmap = dict(flat.basic_blocks())
    if start not in bmap:
        return None  # run starts mid-block (after a NEW / NEWARRAY / ...)
    blocks: Dict[int, int] = {}
    total = 0
    work = [start]
    while work:
        a = work.pop()
        if a in blocks or a not in bmap:
            continue
        b = bmap[a]
        last = instrs[b - 1]
        o = last.op
        if o in op.INVOKES:
            callee = _inline_target(program, last)
            if callee is None:
                continue  # exits here fall back to the engine loop
            if not all(_fusible(i) for i in instrs[a:b - 1]):
                continue
            total += (b - a) + len(callee.flat().instrs)
        else:
            if not all(_fusible(i) for i in instrs[a:b]):
                continue
            total += b - a
        if total > _MAX_REGION:
            return None
        blocks[a] = b
        if o in op.INVOKES:
            work.append(b)
        elif o == op.GOTO:
            work.append(last.a)
        elif o in op.CMP_BRANCHES:
            work.append(last.b)
            work.append(b)
        elif o in op.BRANCHES:  # IFTRUE / IFFALSE
            work.append(last.a)
            work.append(b)
        else:
            work.append(b)
    for a, b in blocks.items():
        last = instrs[b - 1]
        o = last.op
        if o in op.BRANCHES:
            t = last.b if o in op.CMP_BRANCHES else last.a
            if t in blocks and t <= a:
                return [(a, blocks[a]) for a in sorted(blocks)]
    return None


def _inline_call(tc: "_TraceCompiler", inv, a: int, b: int,
                 prefix: List[int], program) -> None:
    """Epilogue of a region block ending in an inlinable call: guard the
    receiver's runtime class (virtual calls), then compile the callee's
    body in place with its locals mapped to write-once temps.  Any failed
    guard inside the callee deopts to the call instruction itself with the
    receiver/arguments restored — the callee is pure, so the plain
    ``INVOKE`` handler re-executes it with reference semantics."""
    callee = _inline_target(program, inv)
    cf = callee.flat().instrs
    nargs = inv.c or 0
    virtual = inv.op == op.INVOKEVIRTUAL
    kinv = b - 1 - a        # run-relative index of the call instruction
    cinv = prefix[kinv]     # cycles of the completed caller prefix

    # materialize receiver + args to temps (top of stack: ... rcv a1 .. an)
    tc.need(nargs + (1 if virtual else 0))
    argts = [tc.pop_temp() for _ in range(nargs)][::-1]
    rcv = tc.pop_temp() if virtual else None
    tc.flush()  # caller residue below the operands goes to the real stack

    pushback = [f"s.append({t})" for t in ([rcv] if virtual else []) + argts]
    saved_tail = tc.deopt_tail
    tc.deopt_tail = lambda k: [f"return ({b - 1}, n + {kinv}, c + {cinv}, 1)"]
    tc.inline_pushback = pushback

    nslots = max(callee.max_locals, (0 if callee.is_static else 1) + nargs)
    ilocals = ["None"] * nslots
    idx = 0
    if virtual:
        # monomorphic inline cache: exact-class check makes the compile-time
        # resolution from the static class valid at runtime (a subclass —
        # overriding or not — deopts to the dynamic lookup)
        tc.needs_heap = True
        tc.guard(f"{rcv}.__class__ is not Ref", 0, [])
        o = tc.temp()
        tc.emit(f"{o} = H.get({rcv}.oid)")
        tc.guard(f"{o}.__class__ is not HeapObject", 0, [])
        tc.guard(f"{o}.class_name != {inv.a!r}", 0, [])
        ilocals[0] = rcv
        idx = 1
    for t in argts:
        ilocals[idx] = t
        idx += 1

    tc.ilocals = ilocals
    for cins in cf[:-1]:
        tc.compile_ins(cins, 0)  # k unused: inline deopts ignore it
    ret = cf[-1]
    retval = tc.pop() if ret.op != op.RETURN else None
    tc.ilocals = None
    tc.inline_pushback = None
    tc.deopt_tail = saved_tail
    tc.vstack = []
    if retval is not None:
        tc.vstack.append(retval)

    ncallee = len(cf)
    ntot = (b - a) + ncallee  # caller prefix + INVOKE + callee body
    ctot = cinv + inv.cost + sum(i.cost for i in cf)
    tc.flush()
    tc.emit(f"n += {ntot}")
    tc.emit(f"c += {ctot}")
    tc.emit(f"pc = {b}")


def _compile_region(flat, ext: List[Tuple[int, int]], entry: int,
                    program=None):
    """Compile a loop region into one closure with an internal
    block-dispatch loop: iterations of the hot loop never return to the
    engine.  Returns ``(exit_pc, steps, cycles, deopt)`` — ``deopt=1``
    leaves the machine exactly at a failed guard (stack rebuilt, prefix
    accounted), ``deopt=0`` is a clean exit at a pc outside the region
    (a call/return block, or the loop's natural exit)."""
    instrs = flat.instrs
    tc = _TraceCompiler()
    chain: List[str] = []
    for bi, (a, b) in enumerate(ext):
        blk = instrs[a:b]
        costs = [i.cost for i in blk]
        prefix: List[int] = []
        tot = 0
        for cst in costs:
            prefix.append(tot)
            tot += cst
        tc.vstack = []
        tc.deopt_tail = (
            lambda a=a, prefix=prefix:
            lambda k: [f"return ({a + k}, n + {k}, c + {prefix[k]}, 1)"]
        )()
        mark = len(tc.lines)
        last = blk[-1]
        terminal = last.op in op.BRANCHES
        is_call = last.op in op.INVOKES
        for k, ins in enumerate(blk[:-1] if (terminal or is_call) else blk):
            tc.compile_ins(ins, k)
        nblk, cblk = len(blk), sum(costs)
        if is_call:
            _inline_call(tc, last, a, b, prefix, program)
        elif terminal:
            o = last.op
            if o == op.GOTO:
                tc.flush()
                tc.emit(f"n += {nblk}")
                tc.emit(f"c += {cblk}")
                tc.emit(f"pc = {last.a}")
            else:
                if o in op.CMP_BRANCHES:
                    bb = tc.pop()
                    aa = tc.pop()
                    ea, eb = lower_py(aa), lower_py(bb)
                    if o == op.IF_ACMP:
                        cond = f"_aeq({ea}, {eb})"
                        if last.a != "EQ":
                            cond = f"not {cond}"
                    else:
                        sym = _CMP_SYM.get(last.a)
                        if sym is None:
                            raise CodegenError(
                                f"uncompilable condition {last.a!r}"
                            )
                        cond = f"({ea}) {sym} ({eb})"
                    target = last.b
                else:  # IFTRUE / IFFALSE
                    c = lower_py(tc.pop())
                    cond = f"({c})" if o == op.IFTRUE else f"not ({c})"
                    target = last.a
                tc.flush()
                tc.emit(f"n += {nblk}")
                tc.emit(f"c += {cblk}")
                tc.emit(f"pc = {target} if {cond} else {b}")
        else:
            tc.flush()
            tc.emit(f"n += {nblk}")
            tc.emit(f"c += {cblk}")
            tc.emit(f"pc = {b}")
        blk_lines = tc.lines[mark:]
        del tc.lines[mark:]
        chain.append(f"{'if' if bi == 0 else 'elif'} pc == {a}:")
        chain.extend("    " + ln for ln in blk_lines)
    chain.append("else:")
    chain.append("    return (pc, n, c, 0)")
    body = ["s = f.stack", "L = f.locals"]
    if tc.needs_heap:
        body.append("H = m.heap._store")
    if tc.needs_statics:
        body.append("S = m.statics")
    body += ["n = 0", "c = 0", f"pc = {entry}", "while 1:"]
    body += ["    " + ln for ln in chain]
    return _assemble("_region", body, f"region@{entry}")


def promote(run: Run, flat=None, program=None) -> bool:
    """Trace-compile a hot run — as a whole loop region when its block
    heads one, else as a straight-line closure.  On any lowering failure
    the run keeps its superinstruction handler permanently (``promoted``
    flips either way so the attempt happens once)."""
    run.promoted = True
    if flat is not None:
        try:
            ext = _find_region(flat, run.start, program)
            fn = (_compile_region(flat, ext, run.start, program)
                  if ext else None)
        except Exception:
            fn = None
        if fn is not None:
            run.fn = fn
            run.region = True
            run.compiled = True
            return True
    if run.n < 4:
        # the superinstruction is already near-optimal for tiny runs;
        # don't pay compile time for no win
        return False
    try:
        fn = _TraceCompiler(run).compile()
    except Exception:
        return False
    run.fn = fn
    run.compiled = True
    return True


# --------------------------------------------------------------------------
# the engine loop
# --------------------------------------------------------------------------

def run_block_compiled(machine, stop_depth: int = 1):
    """Compiled-tier twin of :meth:`Machine.run_block`: same contract
    (returns ``(kind, gen, push, cost)``; parks ``pending_block_cost`` on
    error), but run starts execute through fused superinstructions or
    trace-compiled closures, deoptimizing to the plain threaded handlers
    at guards, syscalls and faults."""
    m = machine
    frames = m.frames
    acc = m.inject_overcharge  # 0 unless a self-test injects a fault
    nsteps = 0
    # engine-tier accounting, flushed to the machine at every exit
    ss = sc = cs = cc = dn = pn = 0
    frame = frames[-1]
    flat = frame.flat
    plan = flat.fused
    if plan is None:
        plan = build_fused(flat)
    thr = flat.threaded
    nplan = len(plan)
    while True:
        pc = frame.pc
        if pc >= nplan:
            m.steps += nsteps
            m.pending_block_cost = acc
            _flush_stats(m, ss, sc, cs, cc, dn, pn)
            raise VMError(f"{frame.method.qualified}: fell off end of code")
        entry = plan[pc]
        if entry.__class__ is Run:
            entry.count += 1
            if not entry.promoted and entry.count >= entry.threshold:
                if promote(entry, flat, m.program):
                    pn += 1
            if entry.region:
                # whole-loop closure: executes many iterations per call and
                # reports exact step/cycle totals and its exit point
                exit_pc, rn, rc, de = entry.fn(m, frame, entry.instrs)
                nsteps += rn
                acc += rc
                cs += rn
                cc += rc
                if de == 0:
                    frame.pc = exit_pc
                    continue
                dn += 1
                pc = exit_pc
                handler, ins = thr[pc]
            else:
                frame.pc = entry.end
                r = entry.fn(m, frame, entry.instrs)
                if r is None:
                    nsteps += entry.n
                    acc += entry.cost
                    if entry.compiled:
                        cs += entry.n
                        cc += entry.cost
                    else:
                        ss += entry.n
                        sc += entry.cost
                    continue
                # deopt: instructions < r completed; charge the prefix and
                # re-execute instruction r through its plain handler, which
                # raises / syscalls with exact reference semantics
                dn += 1
                p = entry.prefix[r]
                nsteps += r
                acc += p
                if entry.compiled:
                    cs += r
                    cc += p
                else:
                    ss += r
                    sc += p
                pc = entry.start + r
                handler, ins = thr[pc]
        else:
            handler, ins = entry
        frame.pc = pc + 1
        nsteps += 1
        acc += ins.cost
        try:
            if handler is INVOKE_HANDLER:
                # a native reached through this call (Sys.time) may read
                # the cycle counter: publish the completed prefix so it
                # sees the per-step path's exact value
                m.inflight_cycles = acc - ins.cost
                r = handler(m, frame, ins)
                m.inflight_cycles = 0
            else:
                r = handler(m, frame, ins)
        except BaseException:
            # the failing instruction's own cost is never charged — the
            # per-step path raises out of step() before returning it
            m.inflight_cycles = 0
            m.steps += nsteps
            m.pending_block_cost = acc - ins.cost
            _flush_stats(m, ss, sc, cs, cc, dn, pn)
            raise
        if r is None:
            continue
        if r is FRAME_SWITCH:
            if len(frames) < stop_depth:
                break
            frame = frames[-1]
            flat = frame.flat
            plan = flat.fused
            if plan is None:
                plan = build_fused(flat)
            thr = flat.threaded
            nplan = len(plan)
            continue
        m.steps += nsteps
        _flush_stats(m, ss, sc, cs, cc, dn, pn)
        return (r[0], r[1], r[2], acc)
    m.steps += nsteps
    _flush_stats(m, ss, sc, cs, cc, dn, pn)
    return (None, None, None, acc)


def _flush_stats(m, ss, sc, cs, cc, dn, pn) -> None:
    m.jit_super_steps += ss
    m.jit_super_cycles += sc
    m.jit_compiled_steps += cs
    m.jit_compiled_cycles += cc
    m.jit_deopts += dn
    m.jit_promotions += pn
