"""Built-in (native) method implementations for the MJ VM.

Each native is ``fn(machine, receiver, args) -> value``.  Receivers are
``str`` for String methods, :class:`~repro.vm.values.Ref` for Vector /
LinkedList / Random, and ``None`` for statics.  ``DependentObject`` methods
are *not* here — they route through the machine's syscall handler so the
distributed runtime (or the local dispatcher) can implement them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from repro.errors import VMError
from repro.vm.values import DependentRef, Ref, i32, i64


def fmt_value(machine, value) -> str:
    """Java-ish textual form of a value (println / string concat)."""
    if value is None:
        return "null"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, Ref):
        entry = machine.heap.get(value)
        cls = getattr(entry, "class_name", None)
        if cls is None:
            return f"array@{value.oid}"
        return f"{cls}@{value.oid}"
    if isinstance(value, DependentRef):
        return f"{value.class_name}@n{value.node}#{value.oid}"
    if isinstance(value, list):
        return "[" + ", ".join(fmt_value(machine, v) for v in value) + "]"
    return str(value)


# --------------------------------------------------------------------------- String
def _str_length(m, recv, args):
    return len(recv)


def _str_char_at(m, recv, args):
    idx = args[0]
    if not 0 <= idx < len(recv):
        raise VMError(f"String.charAt({idx}) out of range")
    return ord(recv[idx])


def _str_substring(m, recv, args):
    begin, end = args
    if not 0 <= begin <= end <= len(recv):
        raise VMError(f"String.substring({begin},{end}) out of range")
    return recv[begin:end]


def _str_index_of(m, recv, args):
    return recv.find(args[0])


def _str_equals(m, recv, args):
    return 1 if isinstance(args[0], str) and args[0] == recv else 0


def _str_hash(m, recv, args):
    h = 0
    for ch in recv:
        h = i32(31 * h + ord(ch))
    return h


def _str_compare_to(m, recv, args):
    other = args[0]
    return -1 if recv < other else (1 if recv > other else 0)


# --------------------------------------------------------------------------- Object
def _obj_equals(m, recv, args):
    other = args[0]
    if isinstance(recv, str):
        return _str_equals(m, recv, args)
    return 1 if recv == other else 0


def _obj_hash(m, recv, args):
    if isinstance(recv, str):
        return _str_hash(m, recv, args)
    if isinstance(recv, Ref):
        return recv.oid
    if isinstance(recv, DependentRef):
        return i32(recv.node * 1000003 + recv.oid)
    return 0


# --------------------------------------------------------------------------- Vector / LinkedList
def _list_state(m, recv):
    obj = m.heap.object(recv)
    if obj.native_state is None:
        obj.native_state = []
    return obj.native_state


def _vec_init(m, recv, args):
    m.heap.object(recv).native_state = []
    return None


def _vec_add(m, recv, args):
    _list_state(m, recv).append(args[0])
    return None


def _vec_add_first(m, recv, args):
    _list_state(m, recv).insert(0, args[0])
    return None


def _vec_get(m, recv, args):
    state = _list_state(m, recv)
    idx = args[0]
    if not 0 <= idx < len(state):
        raise VMError(f"Vector.get({idx}) out of range (size {len(state)})")
    return state[idx]


def _vec_set(m, recv, args):
    state = _list_state(m, recv)
    idx = args[0]
    if not 0 <= idx < len(state):
        raise VMError(f"Vector.set({idx}) out of range (size {len(state)})")
    state[idx] = args[1]
    return None


def _vec_size(m, recv, args):
    return len(_list_state(m, recv))


def _vec_clear(m, recv, args):
    _list_state(m, recv).clear()
    return None


def _vec_contains(m, recv, args):
    return 1 if args[0] in _list_state(m, recv) else 0


def _vec_remove_last(m, recv, args):
    state = _list_state(m, recv)
    if not state:
        raise VMError("Vector.removeLast on empty vector")
    return state.pop()


# --------------------------------------------------------------------------- Math
def _math1(fn: Callable[[float], float]):
    return lambda m, recv, args: fn(float(args[0]))


def _math_pow(m, recv, args):
    return math.pow(float(args[0]), float(args[1]))


def _math_min(m, recv, args):
    return min(float(args[0]), float(args[1]))


def _math_max(m, recv, args):
    return max(float(args[0]), float(args[1]))


def _math_imin(m, recv, args):
    return min(args[0], args[1])


def _math_imax(m, recv, args):
    return max(args[0], args[1])


def _math_iabs(m, recv, args):
    return i32(abs(args[0]))


# --------------------------------------------------------------------------- Sys / Str
def _sys_println(m, recv, args):
    m.stdout.append(fmt_value(m, args[0]))
    return None


def _sys_print(m, recv, args):
    if m.stdout:
        m.stdout[-1] += fmt_value(m, args[0])
    else:
        m.stdout.append(fmt_value(m, args[0]))
    return None


def _sys_time(m, recv, args):
    # virtual milliseconds at the nominal 1 GHz clock; include the cycles
    # the in-flight fast-path block has completed but not yet surfaced, so
    # both engines observe the identical instant
    return i64(int((m.cycles + m.inflight_cycles) // 1_000_000))


def _str_concat(m, recv, args):
    return fmt_value(m, args[0]) + fmt_value(m, args[1])


def _str_value_of(m, recv, args):
    return fmt_value(m, args[0])


# --------------------------------------------------------------------------- Random (64-bit LCG, deterministic)
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407


def _rnd_init(m, recv, args):
    m.heap.object(recv).native_state = i64(args[0] if args[0] else 88172645463325252)
    return None


def _rnd_step(m, recv) -> int:
    obj = m.heap.object(recv)
    state = i64(_LCG_A * (obj.native_state or 1) + _LCG_C)
    obj.native_state = state
    return state


def _rnd_next_int(m, recv, args):
    bound = args[0]
    if bound <= 0:
        raise VMError(f"Random.nextInt bound must be positive, got {bound}")
    return (_rnd_step(m, recv) >> 16) % bound


def _rnd_next_float(m, recv, args):
    return ((_rnd_step(m, recv) >> 11) & ((1 << 53) - 1)) / float(1 << 53)


def _rnd_next_long(m, recv, args):
    return _rnd_step(m, recv)


#: (class, method) -> native implementation
REGISTRY: Dict[Tuple[str, str], Callable] = {
    ("String", "length"): _str_length,
    ("String", "charAt"): _str_char_at,
    ("String", "substring"): _str_substring,
    ("String", "indexOf"): _str_index_of,
    ("String", "equals"): _str_equals,
    ("String", "hashCode"): _str_hash,
    ("String", "compareTo"): _str_compare_to,
    ("Object", "equals"): _obj_equals,
    ("Object", "hashCode"): _obj_hash,
    ("Vector", "<init>"): _vec_init,
    ("Vector", "add"): _vec_add,
    ("Vector", "get"): _vec_get,
    ("Vector", "set"): _vec_set,
    ("Vector", "size"): _vec_size,
    ("Vector", "clear"): _vec_clear,
    ("Vector", "contains"): _vec_contains,
    ("Vector", "removeLast"): _vec_remove_last,
    ("LinkedList", "<init>"): _vec_init,
    ("LinkedList", "add"): _vec_add,
    ("LinkedList", "addFirst"): _vec_add_first,
    ("LinkedList", "get"): _vec_get,
    ("LinkedList", "size"): _vec_size,
    ("Math", "sqrt"): _math1(math.sqrt),
    ("Math", "sin"): _math1(math.sin),
    ("Math", "cos"): _math1(math.cos),
    ("Math", "exp"): _math1(math.exp),
    ("Math", "log"): _math1(math.log),
    ("Math", "floor"): _math1(lambda x: float(math.floor(x))),
    ("Math", "abs"): _math1(abs),
    ("Math", "pow"): _math_pow,
    ("Math", "min"): _math_min,
    ("Math", "max"): _math_max,
    ("Math", "imin"): _math_imin,
    ("Math", "imax"): _math_imax,
    ("Math", "iabs"): _math_iabs,
    ("Sys", "println"): _sys_println,
    ("Sys", "print"): _sys_print,
    ("Sys", "time"): _sys_time,
    ("Str", "concat"): _str_concat,
    ("Str", "valueOf"): _str_value_of,
    ("Random", "<init>"): _rnd_init,
    ("Random", "nextInt"): _rnd_next_int,
    ("Random", "nextFloat"): _rnd_next_float,
    ("Random", "nextLong"): _rnd_next_long,
}


def find_native(class_name: str, method: str) -> Callable:
    fn = REGISTRY.get((class_name, method))
    if fn is None:
        fn = REGISTRY.get(("Object", method))
    if fn is None:
        raise VMError(f"no native implementation for {class_name}.{method}")
    return fn
