"""The MJ virtual machine — the substrate standing in for Joeq / the JVM.

The interpreter is *steppable*: :meth:`Machine.step` executes exactly one
bytecode instruction and returns its abstract cycle cost.  That is what lets
the distributed runtime drive many simulated nodes deterministically and lets
the sampling profiler fire at exact virtual-time quanta.
"""

from repro.vm.heap import Heap, HeapArray, HeapObject
from repro.vm.interpreter import Machine, run_main
from repro.vm.loader import LoadedProgram, load_program
from repro.vm.values import DependentRef, Ref, default_value

__all__ = [
    "Machine",
    "run_main",
    "Heap",
    "HeapObject",
    "HeapArray",
    "Ref",
    "DependentRef",
    "default_value",
    "LoadedProgram",
    "load_program",
]
