"""Per-node heap: objects, arrays, allocation statistics.

The size model (16-byte object header + 8 bytes per field; 16-byte array
header + element width × length) feeds both the memory-allocation profiler
metric (Section 6 of the paper) and the memory constraint of the
multi-constraint partitioner (Section 3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import VMError
from repro.lang.types import elem_width, parse_descriptor
from repro.vm.values import Ref, default_value

OBJECT_HEADER = 16
ARRAY_HEADER = 16
FIELD_SLOT = 8


class HeapObject:
    __slots__ = ("class_name", "fields", "native_state")

    def __init__(self, class_name: str, fields: Dict[str, object]) -> None:
        self.class_name = class_name
        self.fields = fields
        #: backing storage for built-in classes (Vector list, Random state...)
        self.native_state = None

    def size_bytes(self) -> int:
        return OBJECT_HEADER + FIELD_SLOT * len(self.fields)


class HeapArray:
    __slots__ = ("elem_desc", "data")

    def __init__(self, elem_desc: str, length: int) -> None:
        if length < 0:
            raise VMError(f"negative array size {length}")
        self.elem_desc = elem_desc
        ch = elem_desc if elem_desc in ("I", "J", "F", "Z") else "A"
        self.data: List[object] = [default_value(ch)] * length

    def size_bytes(self) -> int:
        try:
            width = elem_width(parse_descriptor(self.elem_desc))
        except ValueError:
            width = 8
        return ARRAY_HEADER + width * len(self.data)


class Heap:
    """An object store with allocation hooks (used by the memory profiler)."""

    def __init__(self) -> None:
        self._store: Dict[int, object] = {}
        self._next = 1
        self.allocated_objects = 0
        self.allocated_bytes = 0
        self.live_bytes = 0
        self.alloc_hook: Optional[Callable[[str, int], None]] = None

    def __len__(self) -> int:
        return len(self._store)

    def _insert(self, entry, kind: str) -> Ref:
        oid = self._next
        self._next += 1
        self._store[oid] = entry
        size = entry.size_bytes()
        self.allocated_objects += 1
        self.allocated_bytes += size
        self.live_bytes += size
        if self.alloc_hook is not None:
            self.alloc_hook(kind, size)
        return Ref(oid)

    def new_object(self, class_name: str, field_names: List[str], field_chars: List[str]) -> Ref:
        fields = {
            name: default_value(ch) for name, ch in zip(field_names, field_chars)
        }
        return self._insert(HeapObject(class_name, fields), class_name)

    def new_array(self, elem_desc: str, length: int) -> Ref:
        return self._insert(HeapArray(elem_desc, length), elem_desc + "[]")

    def get(self, ref: Ref):
        if ref is None:
            raise VMError("null dereference")
        try:
            return self._store[ref.oid]
        except KeyError:
            raise VMError(f"dangling reference {ref!r}") from None

    def object(self, ref: Ref) -> HeapObject:
        entry = self.get(ref)
        if not isinstance(entry, HeapObject):
            raise VMError(f"{ref!r} is not an object")
        return entry

    def array(self, ref: Ref) -> HeapArray:
        entry = self.get(ref)
        if not isinstance(entry, HeapArray):
            raise VMError(f"{ref!r} is not an array")
        return entry

    def free(self, ref: Ref) -> None:
        entry = self._store.pop(ref.oid, None)
        if entry is not None:
            self.live_bytes -= entry.size_bytes()
