"""Class loading: static initialization and field-layout resolution.

``load_program`` runs every ``<clinit>`` (synthesized from static field
initializers) on a bootstrap machine, producing the template static state
that each execution node copies — mirroring the per-JVM statics of the
paper's deployment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import VMError
from repro.bytecode.model import BMethod, BProgram
from repro.lang.types import BOOLEAN, FLOAT, INT, LONG


def _field_char(ty) -> str:
    if ty in (INT, BOOLEAN):
        return "I"
    if ty is LONG:
        return "J"
    if ty is FLOAT:
        return "F"
    return "A"


class LoadedProgram:
    """A :class:`BProgram` plus resolved runtime metadata."""

    def __init__(self, bprogram: BProgram) -> None:
        self.bprogram = bprogram
        self.table = bprogram.table
        self.statics: Dict[Tuple[str, str], object] = {}
        self._layouts: Dict[str, Tuple[List[str], List[str]]] = {}
        # default-initialize all static fields up front
        for bclass in bprogram.classes.values():
            for fld in bclass.static_fields():
                from repro.vm.values import default_value

                self.statics[(bclass.name, fld.name)] = default_value(
                    _field_char(fld.ty)
                )

    def lookup_method(self, class_name: str, method: str) -> Optional[BMethod]:
        return self.bprogram.lookup_method(class_name, method)

    def instance_field_layout(self, class_name: str) -> Tuple[List[str], List[str]]:
        """All instance fields of ``class_name`` including inherited ones,
        as parallel (names, type_chars) lists."""
        cached = self._layouts.get(class_name)
        if cached is not None:
            return cached
        names: List[str] = []
        chars: List[str] = []
        chain = []
        cur: Optional[str] = class_name
        while cur is not None and cur in self.bprogram.classes:
            chain.append(self.bprogram.classes[cur])
            cur = chain[-1].superclass
        for bclass in reversed(chain):  # superclass fields first
            for fld in bclass.instance_fields():
                names.append(fld.name)
                chars.append(_field_char(fld.ty))
        layout = (names, chars)
        self._layouts[class_name] = layout
        return layout

    def main_method(self) -> BMethod:
        if self.bprogram.main_class is None:
            raise VMError("program has no static main method")
        main = self.bprogram.classes[self.bprogram.main_class].methods.get("main")
        if main is None:  # pragma: no cover - main_class implies presence
            raise VMError("main class lost its main method")
        return main

    def fresh_statics(self) -> Dict[Tuple[str, str], object]:
        return dict(self.statics)


def load_program(bprogram: BProgram) -> LoadedProgram:
    """Resolve layouts and execute all ``<clinit>`` initializers."""
    loaded = LoadedProgram(bprogram)
    from repro.vm.interpreter import Machine, run_sync

    boot = Machine(loaded)
    for name in sorted(bprogram.classes):
        clinit = bprogram.classes[name].methods.get("<clinit>")
        if clinit is not None:
            boot.call_bmethod(clinit, None, [])
            run_sync(boot)
    return loaded
