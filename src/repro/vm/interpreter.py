"""The steppable MJ bytecode interpreter.

:class:`Machine` has two execution engines over one instruction set:

* the **fast path** — :meth:`Machine.run_block` executes instructions in a
  tight threaded-code loop (:data:`repro.vm.dispatch.HANDLERS`, indexed by
  the interned opcode ``Instr.opx``), accumulating precomputed ``Instr.cost``
  cycles locally and surfacing **one** ``('cost', N)`` event per run of
  instructions between syscall/communication boundaries;
* the **slow reference path** — :meth:`Machine.step` executes one
  instruction per call through the original if/elif chain and reports its
  cost individually.  It is the oracle the differential suite checks the
  fast path against, and it is used automatically whenever a profiler is
  attached (per-step ``on_step`` hooks need per-step control) or when
  :data:`FORCE_SLOW_PATH` / ``REPRO_VM_SLOW=1`` forces it.

Both engines emit the same totals: identical ``cycles``, ``steps``,
``result``, ``stdout`` and syscall boundaries — only the granularity of
``('cost', n)`` events differs.  Cost flows to the caller as events from
:meth:`Machine.run_gen` / :meth:`Machine.drive`; the driver (sequential
:func:`run_sync`, or a runtime-backend node) owns the clock.  Distribution
natives (``DependentObject.create`` / ``.access``) are delegated to the
machine's pluggable ``syscall`` handler — a generator function — so the same
interpreter runs both centralized and distributed programs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, List, Optional, Tuple

from repro.errors import VMError
from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, Instr
from repro.lang.symbols import DEPENDENT_OBJECT
from repro.lang.types import VOID
from repro.vm.dispatch import FRAME_SWITCH, HANDLERS, INVOKE_HANDLER
from repro.vm.frame import Frame
from repro.vm.heap import Heap
from repro.vm.natives import find_native
from repro.vm.values import DependentRef, Ref, i32, i64, idiv, irem, iushr

#: set (or export ``REPRO_VM_SLOW=1``) to force the per-step reference path
#: everywhere — the switch the differential suite flips to compare the fast
#: block engine against its oracle
FORCE_SLOW_PATH = os.environ.get("REPRO_VM_SLOW", "") not in ("", "0")

#: the three execution tiers :meth:`Machine.drive` can select
ENGINES = ("reference", "fast", "compiled")

#: the tier used when nothing forces the per-step oracle: ``"reference"``
#: (per-step if/elif chain), ``"fast"`` (threaded-code ``run_block``) or
#: ``"compiled"`` (superinstruction fusion + trace-compiled hot blocks,
#: :mod:`repro.vm.jit`).  Set via ``REPRO_VM_ENGINE`` or
#: :func:`forced_engine`; an attached profiler or :data:`FORCE_SLOW_PATH`
#: still win (per-step hooks need per-step control).
VM_ENGINE = os.environ.get("REPRO_VM_ENGINE", "compiled") or "compiled"


@contextmanager
def forced_engine(name: str):
    """Temporarily pin the execution tier — in this process *and*, via the
    ``REPRO_VM_ENGINE`` environment variable, in any worker process spawned
    inside the block (the process backend re-reads it at import under
    spawn-style multiprocessing).  This is the axis the conformance oracle
    and ``repro bench --engine`` differentially test."""
    global VM_ENGINE
    if name not in ENGINES:
        raise ValueError(f"unknown VM engine {name!r} (choose from {ENGINES})")
    prev, prev_env = VM_ENGINE, os.environ.get("REPRO_VM_ENGINE")
    VM_ENGINE = name
    os.environ["REPRO_VM_ENGINE"] = name
    try:
        yield
    finally:
        VM_ENGINE = prev
        if prev_env is None:
            os.environ.pop("REPRO_VM_ENGINE", None)
        else:
            os.environ["REPRO_VM_ENGINE"] = prev_env


@contextmanager
def forced_slow_path(slow: bool = True):
    """Temporarily force (or release) the per-step reference path — in this
    process *and*, via the ``REPRO_VM_SLOW`` environment variable, in any
    worker process spawned inside the block (the process backend re-reads
    the variable at import under spawn-style multiprocessing)."""
    global FORCE_SLOW_PATH
    prev, prev_env = FORCE_SLOW_PATH, os.environ.get("REPRO_VM_SLOW")
    FORCE_SLOW_PATH = slow
    os.environ["REPRO_VM_SLOW"] = "1" if slow else "0"
    try:
        yield
    finally:
        FORCE_SLOW_PATH = prev
        if prev_env is None:
            os.environ.pop("REPRO_VM_SLOW", None)
        else:
            os.environ["REPRO_VM_SLOW"] = prev_env


def _threaded(flat):
    """Threaded form of one method's flat code: ``[(handler, instr), ...]``,
    built once per :class:`~repro.bytecode.model.FlatCode` on first
    execution and cached on it — the per-program direct-handler lists of
    classic threaded-code dispatch."""
    code = flat.threaded
    if code is None:
        code = flat.threaded = [(HANDLERS[i.opx], i) for i in flat.instrs]
    return code

_INT_BIN = {
    op.IADD: lambda a, b: i32(a + b),
    op.ISUB: lambda a, b: i32(a - b),
    op.IMUL: lambda a, b: i32(a * b),
    op.IAND: lambda a, b: i32(a & b),
    op.IOR: lambda a, b: i32(a | b),
    op.IXOR: lambda a, b: i32(a ^ b),
    op.ISHL: lambda a, b: i32(a << (b & 31)),
    op.ISHR: lambda a, b: i32(a >> (b & 31)),
    op.IUSHR: lambda a, b: iushr(a, b, 32),
}
_LONG_BIN = {
    op.LADD: lambda a, b: i64(a + b),
    op.LSUB: lambda a, b: i64(a - b),
    op.LMUL: lambda a, b: i64(a * b),
    op.LAND: lambda a, b: i64(a & b),
    op.LOR: lambda a, b: i64(a | b),
    op.LXOR: lambda a, b: i64(a ^ b),
    op.LSHL: lambda a, b: i64(a << (b & 63)),
    op.LSHR: lambda a, b: i64(a >> (b & 63)),
    op.LUSHR: lambda a, b: iushr(a, b, 64),
}
_FLOAT_BIN = {
    op.FADD: lambda a, b: a + b,
    op.FSUB: lambda a, b: a - b,
    op.FMUL: lambda a, b: a * b,
}
# one source of truth with the fast path's flatten-time resolution — the
# oracle's dispatch structure stays independent, the comparison semantics
# must not be able to drift
_CMP = op.CMP_FUNCS


class Machine:
    """One interpreter instance (one per simulated node)."""

    def __init__(self, loaded, heap: Optional[Heap] = None, node_id: int = 0) -> None:
        self.program = loaded          # repro.vm.loader.LoadedProgram
        self.table = loaded.table
        self.heap = heap if heap is not None else Heap()
        self.statics = loaded.statics
        self.frames: List[Frame] = []
        self.stdout: List[str] = []
        self.cycles = 0                # advanced by the driver, not by step()
        self.steps = 0
        self.result = None
        self.node_id = node_id
        #: generator-function handler for DependentObject create/access;
        #: installed by the distributed runtime or the local dispatcher
        self.syscall: Optional[Callable] = None
        #: optional profiler with on_invoke/on_return/on_step/on_alloc hooks
        self.profiler = None
        #: overhead cycles queued by profiler hooks that fire mid-step
        #: (invoke/return/alloc); folded into the current step's cost
        self.pending_extra = 0
        #: cycles a failed :meth:`run_block` had accumulated for already
        #: *completed* instructions; the driving generator charges them
        #: before propagating the error, matching the per-step path
        self.pending_block_cost = 0
        #: cycles the in-flight :meth:`run_block` has completed but not yet
        #: surfaced to the driver; published around call dispatch so
        #: cycle-reading natives (``Sys.time``) see exactly what the
        #: per-step path would have charged by that point
        self.inflight_cycles = 0
        #: deliberate fast-path fault injection for conformance-oracle
        #: self-tests: when the ``REPRO_VM_INJECT_OVERCHARGE`` environment
        #: variable is a positive integer, every :meth:`run_block`
        #: overcharges that many cycles — a bug the differential oracle
        #: must catch.  Zero (the default) is free.
        self.inject_overcharge = int(
            os.environ.get("REPRO_VM_INJECT_OVERCHARGE", "0") or "0"
        )
        #: compiled-tier accounting (repro.vm.jit): steps/cycles executed
        #: through superinstructions and trace-compiled closures, guard
        #: deopts, and runs promoted by this machine.  Observability only —
        #: totals (``steps``/``cycles``/NodeStats) are engine-invariant.
        self.jit_super_steps = 0
        self.jit_super_cycles = 0
        self.jit_compiled_steps = 0
        self.jit_compiled_cycles = 0
        self.jit_deopts = 0
        self.jit_promotions = 0

    def jit_stats(self) -> dict:
        """Compiled-tier counters of this machine (all zero on the
        reference/fast tiers)."""
        return {
            "super_steps": self.jit_super_steps,
            "super_cycles": self.jit_super_cycles,
            "compiled_steps": self.jit_compiled_steps,
            "compiled_cycles": self.jit_compiled_cycles,
            "deopts": self.jit_deopts,
            "promotions": self.jit_promotions,
        }

    # ------------------------------------------------------------------ calls
    def call_bmethod(
        self, method: BMethod, receiver, args, on_return: Optional[Callable] = None
    ) -> Frame:
        nlocals = max(
            method.max_locals, (0 if method.is_static else 1) + method.nargs
        )
        frame = Frame(method, nlocals)
        idx = 0
        if not method.is_static:
            frame.locals[0] = receiver
            idx = 1
        for a in args:
            frame.locals[idx] = a
            idx += 1
        frame.on_return = on_return
        self.frames.append(frame)
        if self.profiler is not None:
            self.profiler.on_invoke(self, method)
        return frame

    def _return(self, value) -> None:
        frame = self.frames.pop()
        if self.profiler is not None:
            self.profiler.on_return(self, frame.method)
        if frame.on_return is not None:
            frame.on_return(value)
        elif self.frames:
            if frame.method.ret_type is not VOID and not frame.method.is_ctor:
                self.frames[-1].push(value)
        else:
            self.result = value

    @property
    def done(self) -> bool:
        return not self.frames

    # ------------------------------------------------------------------ stepping
    def step(self):
        """Execute one instruction.

        Returns either an ``int`` cycle cost, or a tuple
        ``('syscall', generator, push_result)`` that the driver must run via
        ``yield from`` (its return value is pushed when ``push_result``).
        """
        frame = self.frames[-1]
        if frame.pc >= len(frame.flat):
            raise VMError(f"{frame.method.qualified}: fell off end of code")
        ins = frame.flat[frame.pc]
        frame.pc += 1
        self.steps += 1
        cost = ins.cost
        if self.profiler is not None:
            cost += self.profiler.on_step(self, cost)
        result = self._execute(ins, frame)
        if self.pending_extra:
            cost += self.pending_extra
            self.pending_extra = 0
        if result is not None:
            # syscall delegation: carry this step's cost along so the driver
            # can charge it before running the delegated generator
            return (result[0], result[1], result[2], cost)
        return cost

    def _execute(self, ins: Instr, frame: Frame):
        o = ins.op
        stack = frame.stack

        # ---- the hot, simple ones first
        if o == op.LDC:
            stack.append(ins.a)
        elif o in op.LOADS:
            stack.append(frame.locals[ins.a])
        elif o in op.STORES:
            frame.locals[ins.a] = stack.pop()
        elif o in _INT_BIN:
            b = stack.pop()
            a = stack.pop()
            stack.append(_INT_BIN[o](a, b))
        elif o in _FLOAT_BIN:
            b = stack.pop()
            a = stack.pop()
            stack.append(_FLOAT_BIN[o](a, b))
        elif o == op.IDIV or o == op.IREM:
            b = stack.pop()
            a = stack.pop()
            if b == 0:
                raise VMError("integer division by zero")
            stack.append(i32(idiv(a, b) if o == op.IDIV else irem(a, b)))
        elif o == op.FDIV:
            b = stack.pop()
            a = stack.pop()
            if b == 0.0:
                raise VMError("float division by zero")
            stack.append(a / b)
        elif o == op.FREM:
            b = stack.pop()
            a = stack.pop()
            if b == 0.0:
                raise VMError("float remainder by zero")
            stack.append(a - b * int(a / b))
        elif o in _LONG_BIN:
            b = stack.pop()
            a = stack.pop()
            stack.append(_LONG_BIN[o](a, b))
        elif o == op.LDIV or o == op.LREM:
            b = stack.pop()
            a = stack.pop()
            if b == 0:
                raise VMError("long division by zero")
            stack.append(i64(idiv(a, b) if o == op.LDIV else irem(a, b)))
        elif o == op.INEG:
            stack.append(i32(-stack.pop()))
        elif o == op.LNEG:
            stack.append(i64(-stack.pop()))
        elif o == op.FNEG:
            stack.append(-stack.pop())
        elif o == op.I2L:
            stack.append(i64(stack.pop()))
        elif o == op.I2F or o == op.L2F:
            stack.append(float(stack.pop()))
        elif o == op.L2I:
            stack.append(i32(stack.pop()))
        elif o == op.F2I:
            stack.append(i32(int(stack.pop())))
        elif o == op.F2L:
            stack.append(i64(int(stack.pop())))

        # ---- control flow
        elif o == op.GOTO:
            frame.pc = ins.a
        elif o in op.CMP_BRANCHES:
            b = stack.pop()
            a = stack.pop()
            if o == op.IF_ACMP:
                eq = (a == b) if (a is not None and b is not None) else (a is b)
                taken = eq if ins.a == "EQ" else not eq
            else:
                taken = _CMP[ins.a](a, b)
            if taken:
                frame.pc = ins.b
        elif o == op.IFTRUE:
            if stack.pop():
                frame.pc = ins.a
        elif o == op.IFFALSE:
            if not stack.pop():
                frame.pc = ins.a

        # ---- stack manipulation
        elif o == op.DUP:
            stack.append(stack[-1])
        elif o == op.POP:
            stack.pop()
        elif o == op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif o == op.ACONST_NULL:
            stack.append(None)

        # ---- objects
        elif o == op.NEW:
            if ins.a == DEPENDENT_OBJECT:
                raise VMError(
                    "NEW DependentObject should have been rewritten to "
                    "DependentObject.create"
                )
            stack.append(self._allocate(ins.a))
        elif o == op.GETFIELD:
            recv = stack.pop()
            if isinstance(recv, DependentRef):
                return self._syscall_access(frame, recv, [], "get", ins.b)
            obj = self.heap.object(self._require_ref(recv))
            try:
                stack.append(obj.fields[ins.b])
            except KeyError:
                raise VMError(f"no field {obj.class_name}.{ins.b}") from None
        elif o == op.PUTFIELD:
            value = stack.pop()
            recv = stack.pop()
            if isinstance(recv, DependentRef):
                return self._syscall_access(frame, recv, [value], "set", ins.b)
            obj = self.heap.object(self._require_ref(recv))
            if ins.b not in obj.fields:
                raise VMError(f"no field {obj.class_name}.{ins.b}")
            obj.fields[ins.b] = value
        elif o == op.GETSTATIC:
            stack.append(self.statics.get((ins.a, ins.b)))
        elif o == op.PUTSTATIC:
            self.statics[(ins.a, ins.b)] = stack.pop()
        elif o in op.INVOKES:
            return self._invoke(ins, frame)
        elif o == op.CHECKCAST:
            value = stack[-1]
            if value is not None and not self._instance_of(value, ins.a):
                raise VMError(f"bad cast to {ins.a} of {value!r}")
        elif o == op.INSTANCEOF:
            value = stack.pop()
            stack.append(
                1 if (value is not None and self._instance_of(value, ins.a)) else 0
            )

        # ---- arrays
        elif o == op.NEWARRAY:
            length = stack.pop()
            stack.append(self.heap.new_array(ins.a, length))
        elif o == op.ARRAYLENGTH:
            recv = stack.pop()
            if isinstance(recv, DependentRef):
                return self._syscall_access(frame, recv, [], "alen", "[]")
            arr = self.heap.array(self._require_ref(recv))
            stack.append(len(arr.data))
        elif o == op.XALOAD:
            idx = stack.pop()
            recv = stack.pop()
            if isinstance(recv, DependentRef):
                return self._syscall_access(frame, recv, [idx], "aget", "[]")
            arr = self.heap.array(self._require_ref(recv))
            if not 0 <= idx < len(arr.data):
                raise VMError(f"array index {idx} out of bounds ({len(arr.data)})")
            stack.append(arr.data[idx])
        elif o == op.XASTORE:
            value = stack.pop()
            idx = stack.pop()
            recv = stack.pop()
            if isinstance(recv, DependentRef):
                return self._syscall_access(frame, recv, [idx, value], "aset", "[]")
            arr = self.heap.array(self._require_ref(recv))
            if not 0 <= idx < len(arr.data):
                raise VMError(f"array index {idx} out of bounds ({len(arr.data)})")
            arr.data[idx] = value

        # ---- returns
        elif o == op.RETURN:
            self._return(None)
        elif o in op.RETURNS:
            self._return(stack.pop())

        # ---- distribution support
        elif o == op.PACK:
            n = ins.a
            if n == 0:
                stack.append([])
            else:
                values = stack[-n:]
                del stack[-n:]
                stack.append(list(values))
        else:  # pragma: no cover
            raise VMError(f"unknown opcode {o}")
        return None

    # ------------------------------------------------------------------ helpers
    def _require_ref(self, value) -> Ref:
        if value is None:
            raise VMError("null dereference")
        if not isinstance(value, Ref):
            raise VMError(f"expected a reference, got {value!r}")
        return value

    def _allocate(self, class_name: str) -> Ref:
        names, chars = self.program.instance_field_layout(class_name)
        return self.heap.new_object(class_name, names, chars)

    def _instance_of(self, value, class_name: str) -> bool:
        if class_name.startswith("["):
            return isinstance(value, Ref)  # loose array checks
        if isinstance(value, str):
            return class_name in ("String", "Object")
        if isinstance(value, list):
            return class_name in ("LinkedList", "Object")
        if isinstance(value, DependentRef):
            return self.table.is_subtype(value.class_name, class_name)
        if isinstance(value, Ref):
            entry = self.heap.get(value)
            cls = getattr(entry, "class_name", None)
            if cls is None:
                return class_name == "Object"
            return self.table.is_subtype(cls, class_name)
        return class_name == "Object"  # boxed primitive

    # ------------------------------------------------------------------ invokes
    def _invoke(self, ins: Instr, frame: Frame):
        cls, name, nargs = ins.a, ins.b, ins.c
        stack = frame.stack
        args = []
        if nargs:
            args = stack[-nargs:]
            del stack[-nargs:]

        if cls == DEPENDENT_OBJECT:
            if name == "create":
                # static factory inserted by the rewriter: (args, loc, clsName)
                gen = self._require_syscall()("create", None, args)
                return ("syscall", gen, True)
            if name == "access":
                recv = stack.pop()
                gen = self._require_syscall()("access", recv, args)
                return ("syscall", gen, True)
            raise VMError(f"unknown DependentObject method {name}")

        if ins.op == op.INVOKESTATIC:
            method = self.program.lookup_method(cls, name)
            if method is not None:
                self.call_bmethod(method, None, args)
                return None
            return self._native(cls, name, None, args, frame)

        recv = stack.pop()
        if ins.op == op.INVOKESPECIAL:
            # constructor invocation
            method = self.program.lookup_method(cls, name)
            if method is not None:
                self.call_bmethod(method, recv, args)
                return None
            return self._native(cls, name, recv, args, frame)

        # INVOKEVIRTUAL
        if isinstance(recv, DependentRef):
            # un-rewritten call on a remote object: fall back to a remote
            # DEPENDENCE access (keeps partial rewrites sound)
            return self._syscall_access(frame, recv, args, "invoke", name)
        if isinstance(recv, str):
            return self._native("String", name, recv, args, frame)
        if isinstance(recv, list):
            return self._native("LinkedList", name, recv, args, frame)
        if recv is None:
            raise VMError(f"null receiver for {cls}.{name}")
        if isinstance(recv, Ref):
            entry = self.heap.get(recv)
            runtime_cls = getattr(entry, "class_name", "Object")
            method = self.program.lookup_method(runtime_cls, name)
            if method is not None:
                self.call_bmethod(method, recv, args)
                return None
            return self._native(runtime_cls, name, recv, args, frame)
        # boxed primitive receiver (Object.equals / hashCode on ints...)
        return self._native("Object", name, recv, args, frame)

    def _native(self, cls: str, name: str, recv, args, frame: Frame):
        fn = find_native(cls, name)
        value = fn(self, recv, args)
        mi = self.table.resolve_method(cls, name)
        if mi is not None and mi.ret is not VOID and not mi.is_ctor:
            frame.push(value)
        return None

    def _require_syscall(self):
        if self.syscall is None:
            from repro.runtime.local import local_dispatcher

            self.syscall = local_dispatcher(self)
        return self.syscall

    def _syscall_access(self, frame: Frame, recv: DependentRef, args, kind: str, member: str):
        """Fallback remote access for un-rewritten instructions hitting a
        DependentRef (field get/set or invoke)."""
        from repro.lang.symbols import (
            ARRAY_GET,
            ARRAY_LEN,
            ARRAY_SET,
            FIELD_GET,
            FIELD_SET,
            INVOKE_METHOD_HASRETURN,
            INVOKE_METHOD_VOID,
        )

        if kind == "get":
            access = FIELD_GET
            push = True
        elif kind == "set":
            access = FIELD_SET
            push = False
        elif kind == "aget":
            access = ARRAY_GET
            push = True
        elif kind == "aset":
            access = ARRAY_SET
            push = False
        elif kind == "alen":
            access = ARRAY_LEN
            push = True
        else:
            mi = self.table.resolve_method(recv.class_name, member)
            if mi is not None and mi.ret is VOID:
                access = INVOKE_METHOD_VOID
                push = False
            else:
                access = INVOKE_METHOD_HASRETURN
                push = True
        gen = self._require_syscall()("access", recv, [list(args), access, member])
        return ("syscall", gen, push)

    # ------------------------------------------------------------------ fast path
    def run_block(self, stop_depth: int = 1):
        """Execute a cost-batched run of instructions in a tight
        threaded-code loop (the fast path).

        Runs until a syscall boundary is reached or the frame depth drops
        below ``stop_depth``, dispatching through
        :data:`repro.vm.dispatch.HANDLERS` and accumulating the precomputed
        per-instruction cycle cost locally — no per-step generator yields,
        no string-keyed lookups.  Returns ``(kind, gen, push, cost)`` where
        ``kind`` is ``'syscall'`` (run the generator, push its value when
        ``push``) or ``None`` (depth boundary reached); ``cost`` is the
        cycles of the whole block, to be surfaced as **one** ``('cost', N)``
        event.  On error, the cost of the completed prefix is parked in
        ``pending_block_cost`` so drivers charge exactly what the per-step
        oracle would have charged.
        """
        frames = self.frames
        acc = self.inject_overcharge  # 0 unless a self-test injects a fault
        nsteps = 0
        frame = frames[-1]
        code = _threaded(frame.flat)
        ncode = len(code)
        while True:
            pc = frame.pc
            if pc >= ncode:
                self.steps += nsteps
                self.pending_block_cost = acc
                raise VMError(f"{frame.method.qualified}: fell off end of code")
            handler, ins = code[pc]
            frame.pc = pc + 1
            nsteps += 1
            acc += ins.cost
            try:
                if handler is INVOKE_HANDLER:
                    # a native reached through this call (Sys.time) may read
                    # the cycle counter: publish the block's completed
                    # prefix so it sees the per-step path's exact value
                    self.inflight_cycles = acc - ins.cost
                    r = handler(self, frame, ins)
                    self.inflight_cycles = 0
                else:
                    r = handler(self, frame, ins)
            except BaseException:
                # the failing instruction's own cost is never charged — the
                # per-step path raises out of step() before returning it
                self.inflight_cycles = 0
                self.steps += nsteps
                self.pending_block_cost = acc - ins.cost
                raise
            if r is None:
                continue
            if r is FRAME_SWITCH:
                if len(frames) < stop_depth:
                    break
                frame = frames[-1]
                code = _threaded(frame.flat)
                ncode = len(code)
                continue
            self.steps += nsteps
            return (r[0], r[1], r[2], acc)
        self.steps += nsteps
        return (None, None, None, acc)

    # ------------------------------------------------------------------ compiled tier
    def run_block_compiled(self, stop_depth: int = 1):
        """Compiled-tier engine (:mod:`repro.vm.jit`): same contract as
        :meth:`run_block`, but run starts execute through fused
        superinstructions / trace-compiled closures with guard-based deopt
        back to the plain threaded handlers."""
        return _run_block_compiled(self, stop_depth)

    # ------------------------------------------------------------------ driving
    def drive(self, stop_depth: int = 1):
        """Generator driving the machine until the frame depth drops below
        ``stop_depth``, yielding ``('cost', n)`` events (and whatever events
        delegated syscall generators yield, e.g. ``('wait',)`` from the
        simulated MPI layer).

        With no profiler attached this batches cost per block-engine call
        (:meth:`run_block` on the ``fast`` tier, :meth:`run_block_compiled`
        on the ``compiled`` tier) — one event per syscall-to-syscall span
        of computation.  Attaching a profiler, setting
        :data:`FORCE_SLOW_PATH`, or selecting the ``reference`` tier
        (:data:`VM_ENGINE`) transparently falls back to the per-step
        reference path, preserving per-instruction ``on_step`` semantics.
        All tiers produce identical cycle/step totals and identical
        machine state at every syscall boundary.
        """
        frames = self.frames
        while len(frames) >= stop_depth:
            if (
                self.profiler is None
                and not FORCE_SLOW_PATH
                and VM_ENGINE != "reference"
            ):
                try:
                    if VM_ENGINE == "compiled":
                        kind, gen, push, cost = _run_block_compiled(
                            self, stop_depth
                        )
                    else:
                        kind, gen, push, cost = self.run_block(stop_depth)
                except BaseException:
                    charge = self.pending_block_cost
                    self.pending_block_cost = 0
                    if charge:
                        yield ("cost", charge)
                    raise
                if cost:
                    yield ("cost", cost)
                if kind is None:
                    continue
            else:
                r = self.step()
                if isinstance(r, int):
                    yield ("cost", r)
                    continue
                _, gen, push, cost = r
                yield ("cost", cost)
            value = yield from gen
            if push and frames:
                frames[-1].push(value)
        return self.result

    def run_gen(self):
        """Generator that runs the machine to completion, yielding
        ``('cost', cycles)`` events — batched per block on the fast path,
        per instruction on the reference path (see :meth:`drive`)."""
        result = yield from self.drive(1)
        return result


def run_sync(machine: Machine) -> object:
    """Drive a machine to completion outside any cluster (centralized
    execution).  ``('wait',)`` events are illegal here — they would mean the
    program tried to block on a network that does not exist."""
    for event in machine.run_gen():
        if event[0] == "cost":
            machine.cycles += event[1]
        elif event[0] == "wait":
            raise VMError("machine blocked on communication outside a cluster")
    return machine.result


def run_main(loaded, main_args=None) -> Machine:
    """Run ``main`` of a loaded program on a fresh machine; returns the
    finished machine (inspect ``.stdout``, ``.cycles``, ``.result``)."""
    machine = Machine(loaded)
    main = loaded.main_method()
    machine.call_bmethod(main, None, [main_args])
    run_sync(machine)
    return machine


# imported last: the jit module builds on the dispatch/threaded machinery
# above but never imports this module, keeping the layering acyclic
from repro.vm.jit import run_block_compiled as _run_block_compiled  # noqa: E402
