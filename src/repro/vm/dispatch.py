"""Threaded-code dispatch for the fast interpreter path.

One handler function per opcode, stored in :data:`HANDLERS` — a dense list
indexed by the interned opcode (``Instr.opx``).  The block engine
(:meth:`repro.vm.interpreter.Machine.run_block`) executes
``HANDLERS[ins.opx](machine, frame, ins)`` in a tight loop instead of
walking :meth:`Machine._execute`'s string-keyed if/elif chain, and the
string-keyed ``_CMP`` / ``_INT_BIN`` tables are folded away: arithmetic
opcodes get their own handlers and compare-branches carry their resolved
comparison callable in ``Instr.cfn`` (set once at flatten time).

Handler protocol — each handler returns one of:

* ``None``          — same frame keeps running (the overwhelmingly common
  case: constants, locals, arithmetic, branches, heap ops on local objects);
* :data:`FRAME_SWITCH` — the frame stack changed (invoke pushed a frame,
  return popped one, or a native ran); the block engine re-fetches the top
  frame and checks its stop depth;
* a ``('syscall', generator, push_result)`` tuple — the instruction needs
  the distribution runtime; the block engine ends the current cost block
  and hands the generator to the driver.

Semantics are intentionally a line-for-line mirror of
:meth:`Machine._execute`; the per-step path stays in the interpreter as the
reference oracle the differential suite checks this table against.
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import VMError
from repro.bytecode import opcodes as op
from repro.lang.symbols import DEPENDENT_OBJECT
from repro.vm.values import DependentRef, i32, i64, idiv, irem, iushr

#: sentinel returned by handlers after the frame stack may have changed
FRAME_SWITCH = object()


# ------------------------------------------------------------------ constants
def _ldc(m, f, ins):
    f.stack.append(ins.a)


def _aconst_null(m, f, ins):
    f.stack.append(None)


# ------------------------------------------------------------------ locals
def _load(m, f, ins):
    f.stack.append(f.locals[ins.a])


def _store(m, f, ins):
    f.locals[ins.a] = f.stack.pop()


# ------------------------------------------------------------------ stack
def _dup(m, f, ins):
    f.stack.append(f.stack[-1])


def _pop(m, f, ins):
    f.stack.pop()


def _swap(m, f, ins):
    s = f.stack
    s[-1], s[-2] = s[-2], s[-1]


# ------------------------------------------------------------------ int arith
def _iadd(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() + b))


def _isub(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() - b))


def _imul(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() * b))


def _iand(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() & b))


def _ior(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() | b))


def _ixor(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() ^ b))


def _ishl(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() << (b & 31)))


def _ishr(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i32(s.pop() >> (b & 31)))


def _iushr(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(iushr(s.pop(), b, 32))


def _idiv(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0:
        raise VMError("integer division by zero")
    s.append(i32(idiv(a, b)))


def _irem(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0:
        raise VMError("integer division by zero")
    s.append(i32(irem(a, b)))


def _ineg(m, f, ins):
    s = f.stack
    s.append(i32(-s.pop()))


# ------------------------------------------------------------------ long arith
def _ladd(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() + b))


def _lsub(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() - b))


def _lmul(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() * b))


def _land(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() & b))


def _lor(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() | b))


def _lxor(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() ^ b))


def _lshl(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() << (b & 63)))


def _lshr(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(i64(s.pop() >> (b & 63)))


def _lushr(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(iushr(s.pop(), b, 64))


def _ldiv(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0:
        raise VMError("long division by zero")
    s.append(i64(idiv(a, b)))


def _lrem(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0:
        raise VMError("long division by zero")
    s.append(i64(irem(a, b)))


def _lneg(m, f, ins):
    s = f.stack
    s.append(i64(-s.pop()))


# ------------------------------------------------------------------ float arith
def _fadd(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(s.pop() + b)


def _fsub(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(s.pop() - b)


def _fmul(m, f, ins):
    s = f.stack
    b = s.pop()
    s.append(s.pop() * b)


def _fdiv(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0.0:
        raise VMError("float division by zero")
    s.append(a / b)


def _frem(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    if b == 0.0:
        raise VMError("float remainder by zero")
    s.append(a - b * int(a / b))


def _fneg(m, f, ins):
    s = f.stack
    s.append(-s.pop())


# ------------------------------------------------------------------ conversions
def _i2l(m, f, ins):
    s = f.stack
    s.append(i64(s.pop()))


def _x2f(m, f, ins):
    s = f.stack
    s.append(float(s.pop()))


def _l2i(m, f, ins):
    s = f.stack
    s.append(i32(s.pop()))


def _f2i(m, f, ins):
    s = f.stack
    s.append(i32(int(s.pop())))


def _f2l(m, f, ins):
    s = f.stack
    s.append(i64(int(s.pop())))


# ------------------------------------------------------------------ control flow
def _goto(m, f, ins):
    f.pc = ins.a


def _cmp_branch(m, f, ins):
    s = f.stack
    b = s.pop()
    a = s.pop()
    cfn = ins.cfn
    if cfn is None:
        # unknown condition: fail exactly like the oracle's _CMP[ins.a]
        raise KeyError(ins.a)
    if cfn(a, b):
        f.pc = ins.b


def _iftrue(m, f, ins):
    if f.stack.pop():
        f.pc = ins.a


def _iffalse(m, f, ins):
    if not f.stack.pop():
        f.pc = ins.a


# ------------------------------------------------------------------ objects
def _new(m, f, ins):
    if ins.a == DEPENDENT_OBJECT:
        raise VMError(
            "NEW DependentObject should have been rewritten to "
            "DependentObject.create"
        )
    f.stack.append(m._allocate(ins.a))


def _getfield(m, f, ins):
    s = f.stack
    recv = s.pop()
    if isinstance(recv, DependentRef):
        return m._syscall_access(f, recv, [], "get", ins.b)
    obj = m.heap.object(m._require_ref(recv))
    try:
        s.append(obj.fields[ins.b])
    except KeyError:
        raise VMError(f"no field {obj.class_name}.{ins.b}") from None


def _putfield(m, f, ins):
    s = f.stack
    value = s.pop()
    recv = s.pop()
    if isinstance(recv, DependentRef):
        return m._syscall_access(f, recv, [value], "set", ins.b)
    obj = m.heap.object(m._require_ref(recv))
    if ins.b not in obj.fields:
        raise VMError(f"no field {obj.class_name}.{ins.b}")
    obj.fields[ins.b] = value


def _getstatic(m, f, ins):
    f.stack.append(m.statics.get((ins.a, ins.b)))


def _putstatic(m, f, ins):
    m.statics[(ins.a, ins.b)] = f.stack.pop()


def _invoke(m, f, ins):
    r = m._invoke(ins, f)
    if r is not None:
        return r  # ('syscall', generator, push_result)
    return FRAME_SWITCH


def _checkcast(m, f, ins):
    value = f.stack[-1]
    if value is not None and not m._instance_of(value, ins.a):
        raise VMError(f"bad cast to {ins.a} of {value!r}")


def _instanceof(m, f, ins):
    s = f.stack
    value = s.pop()
    s.append(1 if (value is not None and m._instance_of(value, ins.a)) else 0)


# ------------------------------------------------------------------ arrays
def _newarray(m, f, ins):
    s = f.stack
    length = s.pop()
    s.append(m.heap.new_array(ins.a, length))


def _arraylength(m, f, ins):
    s = f.stack
    recv = s.pop()
    if isinstance(recv, DependentRef):
        return m._syscall_access(f, recv, [], "alen", "[]")
    arr = m.heap.array(m._require_ref(recv))
    s.append(len(arr.data))


def _xaload(m, f, ins):
    s = f.stack
    idx = s.pop()
    recv = s.pop()
    if isinstance(recv, DependentRef):
        return m._syscall_access(f, recv, [idx], "aget", "[]")
    arr = m.heap.array(m._require_ref(recv))
    data = arr.data
    if not 0 <= idx < len(data):
        raise VMError(f"array index {idx} out of bounds ({len(data)})")
    s.append(data[idx])


def _xastore(m, f, ins):
    s = f.stack
    value = s.pop()
    idx = s.pop()
    recv = s.pop()
    if isinstance(recv, DependentRef):
        return m._syscall_access(f, recv, [idx, value], "aset", "[]")
    arr = m.heap.array(m._require_ref(recv))
    data = arr.data
    if not 0 <= idx < len(data):
        raise VMError(f"array index {idx} out of bounds ({len(data)})")
    data[idx] = value


# ------------------------------------------------------------------ returns
def _return(m, f, ins):
    m._return(None)
    return FRAME_SWITCH


def _xreturn(m, f, ins):
    m._return(f.stack.pop())
    return FRAME_SWITCH


# ------------------------------------------------------------------ distribution
def _pack(m, f, ins):
    s = f.stack
    n = ins.a
    if n == 0:
        s.append([])
    else:
        values = s[-n:]
        del s[-n:]
        s.append(list(values))


def _unknown(m, f, ins):
    raise VMError(f"unknown opcode {ins.op}")


def _label(m, f, ins):  # pragma: no cover - stripped by flattening
    raise VMError("LABEL pseudo-instruction reached the interpreter")


_BY_NAME = {
    op.LDC: _ldc,
    op.ACONST_NULL: _aconst_null,
    op.ILOAD: _load, op.LLOAD: _load, op.FLOAD: _load, op.ALOAD: _load,
    op.ISTORE: _store, op.LSTORE: _store, op.FSTORE: _store, op.ASTORE: _store,
    op.DUP: _dup, op.POP: _pop, op.SWAP: _swap,
    op.IADD: _iadd, op.ISUB: _isub, op.IMUL: _imul,
    op.IDIV: _idiv, op.IREM: _irem, op.INEG: _ineg,
    op.LADD: _ladd, op.LSUB: _lsub, op.LMUL: _lmul,
    op.LDIV: _ldiv, op.LREM: _lrem, op.LNEG: _lneg,
    op.FADD: _fadd, op.FSUB: _fsub, op.FMUL: _fmul,
    op.FDIV: _fdiv, op.FREM: _frem, op.FNEG: _fneg,
    op.IAND: _iand, op.IOR: _ior, op.IXOR: _ixor,
    op.ISHL: _ishl, op.ISHR: _ishr, op.IUSHR: _iushr,
    op.LAND: _land, op.LOR: _lor, op.LXOR: _lxor,
    op.LSHL: _lshl, op.LSHR: _lshr, op.LUSHR: _lushr,
    op.I2L: _i2l, op.I2F: _x2f, op.L2I: _l2i, op.L2F: _x2f,
    op.F2I: _f2i, op.F2L: _f2l,
    op.IF_ICMP: _cmp_branch, op.IF_LCMP: _cmp_branch,
    op.IF_FCMP: _cmp_branch, op.IF_ACMP: _cmp_branch,
    op.IFTRUE: _iftrue, op.IFFALSE: _iffalse, op.GOTO: _goto,
    op.NEW: _new,
    op.INVOKEVIRTUAL: _invoke, op.INVOKESPECIAL: _invoke,
    op.INVOKESTATIC: _invoke,
    op.GETFIELD: _getfield, op.PUTFIELD: _putfield,
    op.GETSTATIC: _getstatic, op.PUTSTATIC: _putstatic,
    op.CHECKCAST: _checkcast, op.INSTANCEOF: _instanceof,
    op.NEWARRAY: _newarray, op.ARRAYLENGTH: _arraylength,
    op.XALOAD: _xaload, op.XASTORE: _xastore,
    op.RETURN: _return,
    op.IRETURN: _xreturn, op.LRETURN: _xreturn,
    op.FRETURN: _xreturn, op.ARETURN: _xreturn,
    op.PACK: _pack,
    op.LABEL: _label,
}

#: the dispatch table, aligned with :data:`repro.bytecode.opcodes.OPCODE_LIST`
HANDLERS: List[Callable] = [
    _BY_NAME.get(name, _unknown) for name in op.OPCODE_LIST
]

#: the shared invoke handler, re-exported so the block engine can detect
#: call dispatch cheaply (identity check) and publish the in-flight block
#: cost that cycle-reading natives (``Sys.time``) observe
INVOKE_HANDLER = _invoke
