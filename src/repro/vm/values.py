"""Runtime value representations.

MJ primitives map to Python values (``int``/``float``/``bool``-as-int);
strings are immutable Python ``str``; references are :class:`Ref` handles
into a node's :class:`~repro.vm.heap.Heap`.  :class:`DependentRef` is the
runtime handle to a *remote* object — the value-level half of the paper's
``DependentObject`` (Section 5): it records the hosting partition (node), the
object's unique identifier there, and its class.

32-bit / 64-bit integer semantics (wrap-around, logical shift) live here so
the interpreter, the constant folder and tests share one definition.
"""

from __future__ import annotations

from typing import Optional

_I32_MASK = 0xFFFFFFFF
_I64_MASK = 0xFFFFFFFFFFFFFFFF


def i32(v: int) -> int:
    """Wrap a Python int to Java ``int`` (signed 32-bit) semantics."""
    v &= _I32_MASK
    return v - 0x100000000 if v >= 0x80000000 else v


def i64(v: int) -> int:
    """Wrap a Python int to Java ``long`` (signed 64-bit) semantics."""
    v &= _I64_MASK
    return v - 0x10000000000000000 if v >= 0x8000000000000000 else v


def idiv(a: int, b: int) -> int:
    """Java integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def irem(a: int, b: int) -> int:
    """Java integer remainder (sign of the dividend)."""
    return a - idiv(a, b) * b


def iushr(a: int, n: int, bits: int = 32) -> int:
    """Logical (unsigned) right shift of a signed value."""
    mask = _I32_MASK if bits == 32 else _I64_MASK
    n &= bits - 1
    res = (a & mask) >> n
    return i32(res) if bits == 32 else i64(res)


class Ref:
    """A local heap reference: an index into the owning node's heap."""

    __slots__ = ("oid",)

    def __init__(self, oid: int) -> None:
        self.oid = oid

    def __repr__(self) -> str:  # pragma: no cover
        return f"Ref({self.oid})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(("ref", self.oid))


class DependentRef:
    """A reference to an object living on another partition.

    Mirrors the paper's DependentObject payload: "its class type, the
    identifier of the partition (node) that hosts the object, and its unique
    identifier in that partition".
    """

    __slots__ = ("node", "oid", "class_name")

    def __init__(self, node: int, oid: int, class_name: str) -> None:
        self.node = node
        self.oid = oid
        self.class_name = class_name

    def __repr__(self) -> str:  # pragma: no cover
        return f"DependentRef(n{self.node}#{self.oid}:{self.class_name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DependentRef)
            and other.node == self.node
            and other.oid == self.oid
        )

    def __hash__(self) -> int:
        return hash(("dref", self.node, self.oid))


def default_value(type_char: str):
    """Default value for a type descriptor char (field/array initialization)."""
    if type_char == "F":
        return 0.0
    if type_char in ("I", "J", "Z"):
        return 0
    return None


def type_char_of(value) -> str:
    """Runtime tag of a value (used by the streamed message format)."""
    if value is None:
        return "N"
    if isinstance(value, bool):
        return "Z"
    if isinstance(value, int):
        return "J" if not -0x80000000 <= value < 0x80000000 else "I"
    if isinstance(value, float):
        return "F"
    if isinstance(value, str):
        return "S"
    if isinstance(value, Ref):
        return "R"
    if isinstance(value, DependentRef):
        return "D"
    if isinstance(value, list):
        return "L"
    raise TypeError(f"not an MJ value: {value!r}")
