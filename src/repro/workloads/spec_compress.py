"""SPEC JVM98 201_compress — LZW compression round trip.

A faithful-in-structure LZW: dictionary as parallel int arrays (hash-probe
table like the original's), compress a synthetic pseudo-text buffer, expand
it back, verify byte equality."""

from __future__ import annotations

_SIZES = {"test": 600, "bench": 8000, "large": 60000}

_TEMPLATE = """
class LzwDict {{
    int[] prefix;
    int[] suffix;
    int[] htab;
    int hsize;
    int size;
    LzwDict(int capacity) {{
        prefix = new int[capacity];
        suffix = new int[capacity];
        hsize = 1;
        while (hsize < capacity * 2) {{ hsize = hsize * 2; }}
        htab = new int[hsize];
        int i;
        for (i = 0; i < hsize; i++) {{ htab[i] = -1; }}
        size = 256;
    }}
    int hashOf(int pre, int suf) {{
        return ((pre * 31 + suf) * 2654435761) >>> 8 & (hsize - 1);
    }}
    int lookup(int pre, int suf) {{
        int h = hashOf(pre, suf);
        while (htab[h] >= 0) {{
            int code = htab[h];
            if (prefix[code] == pre && suffix[code] == suf) {{ return code; }}
            h = (h + 1) & (hsize - 1);
        }}
        return -1;
    }}
    int add(int pre, int suf) {{
        if (size >= prefix.length) {{ return -1; }}
        prefix[size] = pre;
        suffix[size] = suf;
        int h = hashOf(pre, suf);
        while (htab[h] >= 0) {{ h = (h + 1) & (hsize - 1); }}
        htab[h] = size;
        size++;
        return size - 1;
    }}
    int prefixOf(int code) {{ return prefix[code]; }}
    int suffixOf(int code) {{ return suffix[code]; }}
}}

class Compressor {{
    // like 201_compress, the I/O buffers are owned by the kernel class
    int[] input;
    int[] codes;
    int[] output;
    int codesLen;
    int capacity;

    Compressor(int n, long seed) {{
        capacity = n + 256;
        input = new int[n];
        Random rng = new Random(seed);
        int i;
        for (i = 0; i < n; i++) {{
            // pseudo-text: skewed byte distribution so LZW compresses
            int r = rng.nextInt(100);
            if (r < 40) {{ input[i] = 101; }}          // 'e'
            else if (r < 60) {{ input[i] = 116; }}     // 't'
            else if (r < 75) {{ input[i] = 97; }}      // 'a'
            else {{ input[i] = 32 + rng.nextInt(90); }}
        }}
    }}

    void compress() {{
        LzwDict dict = new LzwDict(capacity);
        int[] out = new int[input.length + 1];
        int outLen = 0;
        int current = input[0];
        int i;
        for (i = 1; i < input.length; i++) {{
            int c = input[i];
            int code = dict.lookup(current, c);
            if (code >= 0) {{
                current = code;
            }} else {{
                out[outLen] = current;
                outLen++;
                dict.add(current, c);
                current = c;
            }}
        }}
        out[outLen] = current;
        outLen++;
        codes = out;
        codesLen = outLen;
    }}

    int expandCode(LzwDict dict, int code, int[] buffer, int at) {{
        // writes the expansion of `code` ending at index `at` (exclusive);
        // returns the start index
        int pos = at;
        while (code >= 256) {{
            pos--;
            buffer[pos] = dict.suffixOf(code);
            code = dict.prefixOf(code);
        }}
        pos--;
        buffer[pos] = code;
        return pos;
    }}

    void decompress() {{
        LzwDict dict = new LzwDict(capacity);
        int[] out = new int[input.length];
        int[] scratch = new int[input.length + 16];
        int outLen = 0;
        int prev = -1;
        int i;
        for (i = 0; i < codesLen; i++) {{
            int code = codes[i];
            int start = expandCode(dict, code, scratch, scratch.length);
            int j;
            int first = scratch[start];
            for (j = start; j < scratch.length; j++) {{
                out[outLen] = scratch[j];
                outLen++;
            }}
            if (prev >= 0) {{
                dict.add(prev, first);
            }}
            prev = code;
        }}
        output = out;
    }}

    int verify() {{
        int errors = 0;
        int i;
        for (i = 0; i < input.length; i++) {{
            if (input[i] != output[i]) {{ errors++; }}
        }}
        if (errors > 0) {{ return -errors; }}
        return (codesLen * 100) / input.length;
    }}
}}

class CompressMain {{
    static void main(String[] args) {{
        Compressor compressor = new Compressor({n}, 31L);
        compressor.compress();
        compressor.decompress();
        int ratio = compressor.verify();
        if (ratio >= 0) {{
            Sys.println("compress ok ratio=" + ratio);
        }} else {{
            Sys.println("compress FAILED errors=" + (0 - ratio));
        }}
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(n=_SIZES[size])
