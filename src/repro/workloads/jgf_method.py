"""JGFMethodBench — raw method invocation cost.

Same-instance calls, other-instance calls and static calls in tight loops;
the distribution-unfriendly workload (every call is a potential message),
which is why the paper's Figure 11 shows it around break-even."""

from __future__ import annotations

_SIZES = {"test": 300, "bench": 15000, "large": 150000}

_TEMPLATE = """
class MethodTarget {{
    int state;
    MethodTarget() {{ state = 0; }}
    int sameInstance(int x) {{ return x + 1; }}
    int withState(int x) {{ state = state + x; return state; }}
    static int staticMethod(int x) {{ return x + 2; }}
}}

class MethodBench {{
    MethodTarget mine;
    MethodBench() {{ mine = new MethodTarget(); }}

    int callSame(int reps) {{
        int acc = 0;
        int i;
        for (i = 0; i < reps; i++) {{
            acc = mine.sameInstance(acc) % 100000;
        }}
        return acc;
    }}
    int callOther(MethodTarget other, int reps) {{
        int acc = 0;
        int i;
        for (i = 0; i < reps; i++) {{
            acc = other.withState(i) % 100000;
        }}
        return acc;
    }}
    int callStatic(int reps) {{
        int acc = 0;
        int i;
        for (i = 0; i < reps; i++) {{
            acc = MethodTarget.staticMethod(acc) % 100000;
        }}
        return acc;
    }}
    int run(int reps) {{
        MethodTarget other = new MethodTarget();
        int a = callSame(reps);
        int b = callOther(other, reps);
        int c = callStatic(reps);
        return a + b + c;
    }}
}}

class MethodMain {{
    static void main(String[] args) {{
        MethodBench bench = new MethodBench();
        int result = bench.run({reps});
        Sys.println("method result=" + result);
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(reps=_SIZES[size])
