"""SPEC JVM98 209_db — in-memory address database.

The original reads an address file and executes a script of add / delete /
find / sort operations over records of string fields.  This version keeps
the record/Vector/entry-comparison structure with a deterministic synthetic
operation stream."""

from __future__ import annotations

_SIZES = {"test": (40, 80), "bench": (150, 400), "large": (1000, 4000)}

_TEMPLATE = """
class DbRecord {{
    int key;
    String name;
    String address;
    int balance;
    DbRecord(int key, String name, String address, int balance) {{
        this.key = key;
        this.name = name;
        this.address = address;
        this.balance = balance;
    }}
    int getKey() {{ return key; }}
    String getName() {{ return name; }}
    boolean sameName(String other) {{ return name.equals(other); }}
}}

class Database {{
    Vector records;
    int nextKey;
    Database() {{ records = new Vector(); nextKey = 0; }}

    int add(String name, String address, int balance) {{
        DbRecord rec = new DbRecord(nextKey, name, address, balance);
        records.add(rec);
        nextKey++;
        return rec.getKey();
    }}
    int indexOfKey(int key) {{
        int i;
        for (i = 0; i < records.size(); i++) {{
            DbRecord rec = (DbRecord) records.get(i);
            if (rec.getKey() == key) {{ return i; }}
        }}
        return -1;
    }}
    DbRecord findByName(String name) {{
        int i;
        for (i = 0; i < records.size(); i++) {{
            DbRecord rec = (DbRecord) records.get(i);
            if (rec.sameName(name)) {{ return rec; }}
        }}
        return null;
    }}
    boolean delete(int key) {{
        int at = indexOfKey(key);
        if (at < 0) {{ return false; }}
        int last = records.size() - 1;
        records.set(at, records.get(last));
        records.removeLast();
        return true;
    }}
    void sortByName() {{
        // insertion sort on names (the original's shell sort is also
        // comparison-driven; insertion keeps it simple and deterministic)
        int n = records.size();
        int i;
        for (i = 1; i < n; i++) {{
            DbRecord key = (DbRecord) records.get(i);
            int j = i - 1;
            boolean moving = true;
            while (moving) {{
                if (j < 0) {{ moving = false; }}
                else {{
                    DbRecord probe = (DbRecord) records.get(j);
                    if (probe.getName().compareTo(key.getName()) > 0) {{
                        records.set(j + 1, probe);
                        j--;
                    }} else {{ moving = false; }}
                }}
            }}
            records.set(j + 1, key);
        }}
    }}
    int size() {{ return records.size(); }}
    int checksum() {{
        int check = 0;
        int i;
        for (i = 0; i < records.size(); i++) {{
            DbRecord rec = (DbRecord) records.get(i);
            check = (check * 31 + rec.getKey() + rec.getName().hashCode()) % 1000003;
        }}
        return check;
    }}
}}

class OpStream {{
    Random rng;
    OpStream(long seed) {{ rng = new Random(seed); }}
    int nextOp() {{ return rng.nextInt(100); }}
    String nextName() {{
        int n = rng.nextInt(64);
        return "name" + n;
    }}
}}

class DbMain {{
    static void main(String[] args) {{
        Database db = new Database();
        OpStream ops = new OpStream(2026L);
        int i;
        for (i = 0; i < {initial}; i++) {{
            db.add(ops.nextName(), "street " + i, i * 10);
        }}
        int found = 0;
        for (i = 0; i < {ops}; i++) {{
            int op = ops.nextOp();
            if (op < 35) {{
                db.add(ops.nextName(), "street x", op);
            }} else if (op < 60) {{
                DbRecord rec = db.findByName(ops.nextName());
                if (rec != null) {{ found++; }}
            }} else if (op < 80) {{
                db.delete(op * 3 % db.size());
            }} else {{
                db.sortByName();
            }}
        }}
        db.sortByName();
        Sys.println("db size=" + db.size() + " found=" + found + " check=" + db.checksum());
    }}
}}
"""


def source(size: str = "test") -> str:
    initial, ops = _SIZES[size]
    return _TEMPLATE.format(initial=initial, ops=ops)
