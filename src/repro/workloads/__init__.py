"""Benchmark workloads (paper Table 1).

MJ re-implementations of the evaluation programs:

* Java Grande section 1: ``create`` (JGFCreateBench), ``method``
  (JGFMethodBench);
* Java Grande section 2: ``crypt`` (JGFCryptBench, IDEA-style cipher),
  ``heapsort`` (JGFHeapSortBench);
* Java Grande section 3: ``moldyn`` (JGFMolDynBench, Lennard-Jones MD),
  ``search`` (JGFSearchBench, alpha-beta game search);
* SPEC JVM98: ``compress`` (201_compress, LZW), ``db`` (209_db, in-memory
  address database).

Each workload provides parameterized MJ source (``size`` in {'test',
'bench', 'large'}) plus the expected final line of output for correctness
checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.workloads import (
    bank,
    jgf_create,
    jgf_method,
    jgf_crypt,
    jgf_heapsort,
    jgf_moldyn,
    jgf_search,
    spec_compress,
    spec_db,
)


@dataclass(frozen=True)
class Workload:
    name: str
    paper_name: str
    source_fn: Callable[[str], str]
    description: str

    def source(self, size: str = "test") -> str:
        return self.source_fn(size)


WORKLOADS: Dict[str, Workload] = {
    "bank": Workload(
        "bank", "running example (Fig. 2)", bank.source,
        "The Bank/Account running example used throughout the paper.",
    ),
    "create": Workload(
        "create", "JGFCreateBench", jgf_create.source,
        "Object/array creation rates across many element types.",
    ),
    "method": Workload(
        "method", "JGFMethodBench", jgf_method.source,
        "Method invocation costs (same-instance, other-instance, static).",
    ),
    "crypt": Workload(
        "crypt", "JGFCryptBench", jgf_crypt.source,
        "IDEA-style block cipher encrypt/decrypt over int arrays.",
    ),
    "heapsort": Workload(
        "heapsort", "JGFHeapSortBench", jgf_heapsort.source,
        "In-place heapsort of a pseudo-random int array.",
    ),
    "moldyn": Workload(
        "moldyn", "JGFMolDynBench", jgf_moldyn.source,
        "Lennard-Jones molecular dynamics (N-body) iterations.",
    ),
    "search": Workload(
        "search", "JGFSearchBench", jgf_search.source,
        "Alpha-beta game-tree search over a small connect game.",
    ),
    "compress": Workload(
        "compress", "SPEC JVM98 201_compress", spec_compress.source,
        "LZW compression/decompression round trip.",
    ),
    "db": Workload(
        "db", "SPEC JVM98 209_db", spec_db.source,
        "In-memory address database: add/find/delete/sort operations.",
    ),
}

#: the eight rows of the paper's Table 1 in row order
TABLE1_ORDER = (
    "create", "method", "crypt", "heapsort", "moldyn", "search", "compress", "db",
)


def get(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
