"""Benchmark workloads (paper Table 1).

MJ re-implementations of the evaluation programs:

* Java Grande section 1: ``create`` (JGFCreateBench), ``method``
  (JGFMethodBench);
* Java Grande section 2: ``crypt`` (JGFCryptBench, IDEA-style cipher),
  ``heapsort`` (JGFHeapSortBench);
* Java Grande section 3: ``moldyn`` (JGFMolDynBench, Lennard-Jones MD),
  ``search`` (JGFSearchBench, alpha-beta game search);
* SPEC JVM98: ``compress`` (201_compress, LZW), ``db`` (209_db, in-memory
  address database).

Each workload provides parameterized MJ source (``size`` in {'test',
'bench', 'large'}) plus the expected final line of output for correctness
checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.api.registry import Registry
from repro.workloads import (
    bank,
    jgf_create,
    jgf_method,
    jgf_crypt,
    jgf_heapsort,
    jgf_moldyn,
    jgf_search,
    service_bank,
    spec_compress,
    spec_db,
)


@dataclass(frozen=True)
class Workload:
    name: str
    paper_name: str
    source_fn: Callable[[str], str]
    description: str

    def source(self, size: str = "test") -> str:
        return self.source_fn(size)


#: the unified plugin registry workloads are selected through — a full
#: ``Mapping``, so dict-style consumers (``WORKLOADS[name]``,
#: ``sorted(WORKLOADS)``, ``name in WORKLOADS``) work unchanged; unknown
#: names raise :class:`~repro.errors.UnknownPluginError`
WORKLOADS: Registry = Registry("workload")

_BUILTINS: Dict[str, Workload] = {
    "bank": Workload(
        "bank", "running example (Fig. 2)", bank.source,
        "The Bank/Account running example used throughout the paper.",
    ),
    "create": Workload(
        "create", "JGFCreateBench", jgf_create.source,
        "Object/array creation rates across many element types.",
    ),
    "method": Workload(
        "method", "JGFMethodBench", jgf_method.source,
        "Method invocation costs (same-instance, other-instance, static).",
    ),
    "crypt": Workload(
        "crypt", "JGFCryptBench", jgf_crypt.source,
        "IDEA-style block cipher encrypt/decrypt over int arrays.",
    ),
    "heapsort": Workload(
        "heapsort", "JGFHeapSortBench", jgf_heapsort.source,
        "In-place heapsort of a pseudo-random int array.",
    ),
    "moldyn": Workload(
        "moldyn", "JGFMolDynBench", jgf_moldyn.source,
        "Lennard-Jones molecular dynamics (N-body) iterations.",
    ),
    "search": Workload(
        "search", "JGFSearchBench", jgf_search.source,
        "Alpha-beta game-tree search over a small connect game.",
    ),
    "compress": Workload(
        "compress", "SPEC JVM98 201_compress", spec_compress.source,
        "LZW compression/decompression round trip.",
    ),
    "db": Workload(
        "db", "SPEC JVM98 209_db", spec_db.source,
        "In-memory address database: add/find/delete/sort operations.",
    ),
    "service_bank": Workload(
        "service_bank", "open-loop bank service", service_bank.source,
        "Bank-as-RPC under a seeded open-loop arrival-rate request stream "
        "(throughput + latency percentiles).",
    ),
}

for _w in _BUILTINS.values():
    WORKLOADS.register(_w.name, _w)

#: the eight rows of the paper's Table 1 in row order
TABLE1_ORDER = (
    "create", "method", "crypt", "heapsort", "moldyn", "search", "compress", "db",
)


def register_workload(workload: Workload, *, override: bool = False) -> Workload:
    """Add a workload to the registry (new scenarios plug in here)."""
    return WORKLOADS.register(workload.name, workload, override=override)


def get(name: str) -> Workload:
    """Look up one workload; raises
    :class:`~repro.errors.UnknownPluginError` (a :class:`KeyError`) with a
    did-you-mean suggestion for unknown names."""
    return WORKLOADS.get(name)
