"""JGFHeapSortBench — in-place heapsort of a pseudo-random int array."""

from __future__ import annotations

_SIZES = {"test": 200, "bench": 4000, "large": 100000}

_TEMPLATE = """
class Sorter {{
    int[] data;
    Sorter(int n, long seed) {{
        data = new int[n];
        Random rng = new Random(seed);
        int i;
        for (i = 0; i < n; i++) {{
            data[i] = rng.nextInt(1000000);
        }}
    }}
    void siftDown(int start, int end) {{
        int root = start;
        while (root * 2 + 1 <= end) {{
            int child = root * 2 + 1;
            if (child + 1 <= end && data[child] < data[child + 1]) {{
                child = child + 1;
            }}
            if (data[root] < data[child]) {{
                int tmp = data[root];
                data[root] = data[child];
                data[child] = tmp;
                root = child;
            }} else {{
                return;
            }}
        }}
    }}
    void sort() {{
        int n = data.length;
        int start;
        for (start = n / 2 - 1; start >= 0; start--) {{
            siftDown(start, n - 1);
        }}
        int end;
        for (end = n - 1; end > 0; end--) {{
            int tmp = data[end];
            data[end] = data[0];
            data[0] = tmp;
            siftDown(0, end - 1);
        }}
    }}
    boolean isSorted() {{
        int i;
        for (i = 1; i < data.length; i++) {{
            if (data[i - 1] > data[i]) {{ return false; }}
        }}
        return true;
    }}
    int checksum() {{
        int check = 0;
        int i;
        for (i = 0; i < data.length; i++) {{
            check = (check * 31 + data[i]) % 1000003;
        }}
        return check;
    }}
}}

class HeapSortMain {{
    static void main(String[] args) {{
        Sorter sorter = new Sorter({n}, 123L);
        sorter.sort();
        if (sorter.isSorted()) {{
            Sys.println("heapsort check=" + sorter.checksum());
        }} else {{
            Sys.println("heapsort FAILED");
        }}
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(n=_SIZES[size])
