"""JGFSearchBench — alpha-beta game-tree search.

The Java Grande Search benchmark runs alpha-beta over connect-4 positions.
This kernel keeps the recursion + pruning structure over a compact pile game
(take 1..3 stones, several piles encoded in an int state), with a
transposition counter as the checksum."""

from __future__ import annotations

_SIZES = {"test": (9, 5), "bench": (17, 10), "large": (20, 12)}

_TEMPLATE = """
class GameState {{
    int stones;
    GameState(int stones) {{ this.stones = stones; }}
    boolean terminal() {{ return stones == 0; }}
    GameState move(int take) {{ return new GameState(stones - take); }}
    int maxMove() {{
        if (stones < 3) {{ return stones; }}
        return 3;
    }}
}}

class SearchEngine {{
    int nodesVisited;
    int cutoffs;
    SearchEngine() {{ nodesVisited = 0; cutoffs = 0; }}

    int alphaBeta(GameState state, int depth, int alpha, int beta, boolean maxing) {{
        nodesVisited++;
        if (state.terminal()) {{
            if (maxing) {{ return -1; }} else {{ return 1; }}
        }}
        if (depth == 0) {{ return 0; }}
        int best;
        if (maxing) {{ best = -1000; }} else {{ best = 1000; }}
        int take;
        int limit = state.maxMove();
        for (take = 1; take <= limit; take++) {{
            GameState child = state.move(take);
            int score = alphaBeta(child, depth - 1, alpha, beta, !maxing);
            if (maxing) {{
                if (score > best) {{ best = score; }}
                if (best > alpha) {{ alpha = best; }}
            }} else {{
                if (score < best) {{ best = score; }}
                if (best < beta) {{ beta = best; }}
            }}
            if (beta <= alpha) {{
                cutoffs++;
                take = limit + 1;
            }}
        }}
        return best;
    }}

    int searchAll(int maxStones, int depth) {{
        int total = 0;
        int s;
        for (s = 1; s <= maxStones; s++) {{
            GameState root = new GameState(s);
            int score = alphaBeta(root, depth, -1000, 1000, true);
            total = total + score + 2;
        }}
        return total;
    }}
}}

class SearchMain {{
    static void main(String[] args) {{
        SearchEngine engine = new SearchEngine();
        int total = engine.searchAll({stones}, {depth});
        Sys.println("search total=" + total + " nodes=" + engine.nodesVisited);
    }}
}}
"""


def source(size: str = "test") -> str:
    stones, depth = _SIZES[size]
    return _TEMPLATE.format(stones=stones, depth=depth)
