"""Open-loop service workload: the bank as an RPC server under a seeded
arrival-rate request stream.

Where the batch workloads measure *makespan*, this one measures *request
serving*: a front-end generates a seeded pseudo-random schedule of
deposit / withdraw / balance requests against a shared :class:`ServiceBank`
and issues them open-loop — each request is sent when its arrival time
comes up (modeled as a computed think-time spin between requests), not
when the previous one finishes.  Distributed across nodes, every operation
on the bank becomes a request/reply exchange, so the throughput and
latency-percentile columns of the report describe real round-trips.

The LCG state stays under 65536 and the multiplier under 2^8, so the
generator behaves identically under arbitrary-precision and 32-bit-wrap
integer semantics — the schedule is the same on every backend and engine.
"""

from __future__ import annotations

_SIZES = {"test": 24, "bench": 160, "large": 1200}

_TEMPLATE = """
class Rng {{
    int state;
    Rng(int seed) {{
        this.state = seed;
    }}
    int next(int bound) {{
        state = (state * 131 + 7919) % 65536;
        return state % bound;
    }}
}}

class ServiceAccount {{
    int id;
    int balance;
    ServiceAccount(int id, int balance) {{
        this.id = id;
        this.balance = balance;
    }}
    int getId() {{ return id; }}
    int getBalance() {{ return balance; }}
    void setBalance(int b) {{ balance = b; }}
}}

class ServiceBank {{
    int numAccounts;
    Vector accounts;
    int served;
    int denied;
    ServiceBank(int numAccounts, int initialBalance) {{
        this.numAccounts = numAccounts;
        this.accounts = new Vector();
        this.served = 0;
        this.denied = 0;
        int i = 0;
        while (i < numAccounts) {{
            ServiceAccount a = new ServiceAccount(i, initialBalance);
            accounts.add(a);
            i++;
        }}
    }}
    int deposit(int accountId, int amount) {{
        ServiceAccount a = (ServiceAccount) accounts.get(accountId);
        a.setBalance(a.getBalance() + amount);
        served = served + 1;
        return a.getBalance();
    }}
    int withdraw(int accountId, int amount) {{
        ServiceAccount a = (ServiceAccount) accounts.get(accountId);
        if (a.getBalance() >= amount) {{
            a.setBalance(a.getBalance() - amount);
            served = served + 1;
            return a.getBalance();
        }}
        denied = denied + 1;
        return 0 - 1;
    }}
    int balanceOf(int accountId) {{
        ServiceAccount a = (ServiceAccount) accounts.get(accountId);
        served = served + 1;
        return a.getBalance();
    }}
    int getServed() {{ return served; }}
    int getDenied() {{ return denied; }}
    int totalAssets() {{
        int total = 0;
        int i;
        for (i = 0; i < accounts.size(); i++) {{
            ServiceAccount a = (ServiceAccount) accounts.get(i);
            total = total + a.getBalance();
        }}
        return total;
    }}
}}

class ServiceMain {{
    static void main(String[] args) {{
        int requests = {n};
        ServiceBank bank = new ServiceBank(16, 1000);
        Rng rng = new Rng(13);
        int checksum = 0;
        int i;
        for (i = 0; i < requests; i++) {{
            int account = rng.next(16);
            int op = rng.next(3);
            int amount = 10 + rng.next(90);
            if (op == 0) {{
                checksum = checksum + bank.deposit(account, amount);
            }} else {{
                if (op == 1) {{
                    checksum = checksum + bank.withdraw(account, amount);
                }} else {{
                    checksum = checksum + bank.balanceOf(account);
                }}
            }}
            // open-loop arrival pacing: the think time before the next
            // request comes from the seeded schedule, not from how long
            // the request above took to serve
            int gap = rng.next(8);
            int spin = 0;
            while (spin < gap) {{
                spin++;
            }}
        }}
        Sys.println("served=" + bank.getServed()
            + " denied=" + bank.getDenied());
        Sys.println("assets=" + bank.totalAssets()
            + " checksum=" + checksum);
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(n=_SIZES[size])
