"""The Bank/Account running example — the paper's Figure 2, completed into a
runnable program (the figure elides bodies)."""

from __future__ import annotations

_SIZES = {"test": 20, "bench": 200, "large": 2000}

_TEMPLATE = """
class Account {{
    int id;
    String name;
    int checking;
    int savings;
    int loan;
    Account(int id, String name, int savings, int checking, int loan) {{
        this.id = id;
        this.name = name;
        this.savings = savings;
        this.checking = checking;
        this.loan = loan;
    }}
    int getId() {{ return id; }}
    int getSavings() {{ return savings; }}
    int getChecking() {{ return checking; }}
    int getLoan() {{ return loan; }}
    int getBalance() {{ return checking + savings; }}
    void setBalance(int b) {{ checking = b - savings; }}
}}

class Bank {{
    int id;
    String name;
    int numCustomers;
    Vector accounts;
    Bank(String name, int numCustomers, int initialBalance) {{
        this.name = name;
        this.numCustomers = numCustomers;
        this.accounts = new Vector();
        initializeAccounts(initialBalance);
    }}
    void initializeAccounts(int initialBalance) {{
        int i = 0;
        int n = numCustomers;
        while (i < n) {{
            Account a = new Account(i, "customer", initialBalance, 0, 0);
            accounts.add(a);
            i++;
        }}
    }}
    void openAccount(Account a) {{
        accounts.add(a);
        numCustomers++;
    }}
    Account getCustomer(int customerID) {{
        int i;
        for (i = 0; i < accounts.size(); i++) {{
            Account a = (Account) accounts.get(i);
            if (a.getId() == customerID) {{ return a; }}
        }}
        return null;
    }}
    boolean withdraw(int customerID, int amount) {{
        Account a = this.getCustomer(customerID);
        if (a != null && a.getBalance() >= amount) {{
            a.setBalance(a.getBalance() - amount);
            return true;
        }} else {{
            return false;
        }}
    }}
    int totalAssets() {{
        int total = 0;
        int i;
        for (i = 0; i < accounts.size(); i++) {{
            Account a = (Account) accounts.get(i);
            total = total + a.getBalance();
        }}
        return total;
    }}
}}

class BankMain {{
    static void main(String[] args) {{
        Bank merchants = new Bank("Merchants", {n}, 10000);
        Account a4 = new Account(100001, "ABC Market", 1000000, 100000, 20000000);
        Account a5 = new Account(100002, "CDE Outlet", 5000000, 300000, 150000000);
        merchants.openAccount(a4);
        merchants.openAccount(a5);
        Account a = merchants.getCustomer(2);
        merchants.withdraw(a.getId(), 900);
        int i;
        for (i = 0; i < {n}; i++) {{
            merchants.withdraw(i, 100);
        }}
        Sys.println("assets=" + merchants.totalAssets());
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(n=_SIZES[size])
