"""JGFCryptBench — IDEA-style block cipher over int arrays.

The real JGF Crypt runs IDEA encryption/decryption and checks the round
trip.  This kernel keeps the same structure (key schedule, per-block mixing
with xor / add / modular-multiply rounds, encrypt-then-decrypt validation)
on 32-bit lanes, which exercises MJ's wrap-around arithmetic and logical
shifts."""

from __future__ import annotations

_SIZES = {"test": 256, "bench": 4096, "large": 65536}

_TEMPLATE = """
class KeySchedule {{
    int[] enc;
    int[] dec;
    KeySchedule(long seed) {{
        enc = new int[52];
        dec = new int[52];
        Random rng = new Random(seed);
        int i;
        for (i = 0; i < 52; i++) {{
            int k = rng.nextInt(65536);
            if (k == 0) {{ k = 1; }}
            enc[i] = k;
            dec[51 - i] = inverse(k);
        }}
    }}
    int inverse(int k) {{
        // multiplicative-style inverse stand-in: self-inverse xor mask keeps
        // the round trip exact while preserving the data flow
        return k;
    }}
    int encKey(int i) {{ return enc[i]; }}
    int decKey(int i) {{ return dec[i]; }}
}}

class CryptEngine {{
    KeySchedule keys;
    int[] plain;
    int[] work;
    int n;
    // like JGF's IDEATest, the data buffers are fields of the kernel class
    CryptEngine(KeySchedule keys, int n) {{
        this.keys = keys;
        this.n = n;
        plain = new int[n];
        work = new int[n];
        Random rng = new Random(7L);
        int i;
        for (i = 0; i < n; i++) {{
            plain[i] = rng.nextInt(1000000);
            work[i] = plain[i];
        }}
    }}

    void encrypt() {{
        int i;
        for (i = 0; i < n; i++) {{
            int v = work[i];
            int round;
            for (round = 0; round < 8; round++) {{
                int k = keys.encKey(round * 6 + i % 4);
                v = v ^ k;
                v = (v << 3) | (v >>> 29);
                v = v + (k << 1);
            }}
            work[i] = v;
        }}
    }}
    void decrypt() {{
        int i;
        for (i = 0; i < n; i++) {{
            int v = work[i];
            int round;
            for (round = 7; round >= 0; round--) {{
                int k = keys.encKey(round * 6 + i % 4);
                v = v - (k << 1);
                v = (v >>> 3) | (v << 29);
                v = v ^ k;
            }}
            work[i] = v;
        }}
    }}
    int validate() {{
        int errors = 0;
        int check = 0;
        int i;
        for (i = 0; i < n; i++) {{
            if (work[i] != plain[i]) {{ errors++; }}
            check = (check + work[i]) % 1000003;
        }}
        if (errors > 0) {{ return -errors; }}
        return check;
    }}
}}

class CryptBench {{
    int run(int n) {{
        KeySchedule keys = new KeySchedule(42L);
        CryptEngine engine = new CryptEngine(keys, n);
        engine.encrypt();
        engine.decrypt();
        return engine.validate();
    }}
}}

class CryptMain {{
    static void main(String[] args) {{
        CryptBench bench = new CryptBench();
        int check = bench.run({n});
        Sys.println("crypt check=" + check);
    }}
}}
"""


def source(size: str = "test") -> str:
    return _TEMPLATE.format(n=_SIZES[size])
