"""JGFCreateBench — object and array creation rates.

Mirrors the Java Grande section-1 benchmark variants the paper profiles in
Table 3 (int[], long[], float[], Object[], Custom[]) and the class-count
scale of Table 1's ``create*`` row (it is the biggest ODG in the paper: many
allocation sites, most of them summary ``*`` instances)."""

from __future__ import annotations

_SIZES = {"test": (8, 16), "bench": (700, 64), "large": (4000, 128)}

_TEMPLATE = """
class Item {{
    int tag;
    Item(int tag) {{ this.tag = tag; }}
    int getTag() {{ return tag; }}
}}
class SmallA {{ int a; SmallA() {{ a = 1; }} }}
class SmallB {{ int b; SmallB() {{ b = 2; }} }}
class SmallC {{ int c; SmallC() {{ c = 3; }} }}
class SmallD {{ int d; SmallD() {{ d = 4; }} }}
class CustomPair {{
    Item left;
    Item right;
    CustomPair(Item l, Item r) {{ left = l; right = r; }}
    int weight() {{ return left.getTag() + right.getTag(); }}
}}

class CreateBench {{
    int checksum;
    CreateBench() {{ checksum = 0; }}

    void createIntArrays(int reps, int len) {{
        int r;
        for (r = 0; r < reps; r++) {{
            int[] a = new int[len];
            a[0] = r;
            checksum = checksum + a[0] + a.length;
        }}
    }}
    void createLongArrays(int reps, int len) {{
        int r;
        for (r = 0; r < reps; r++) {{
            long[] a = new long[len];
            a[0] = 1L + r;
            checksum = checksum + (int) a[0];
        }}
    }}
    void createFloatArrays(int reps, int len) {{
        int r;
        for (r = 0; r < reps; r++) {{
            float[] a = new float[len];
            a[0] = 0.5 + r;
            checksum = checksum + (int) a[0];
        }}
    }}
    void createObjectArrays(int reps, int len) {{
        int r;
        for (r = 0; r < reps; r++) {{
            Item[] a = new Item[len];
            a[0] = new Item(r);
            checksum = checksum + a[0].getTag();
        }}
    }}
    void createCustomObjects(int reps) {{
        int r;
        for (r = 0; r < reps; r++) {{
            Item l = new Item(r);
            Item x = new Item(r + 1);
            CustomPair p = new CustomPair(l, x);
            checksum = checksum + p.weight();
        }}
    }}
    void createSmall(int reps) {{
        int r;
        for (r = 0; r < reps; r++) {{
            SmallA sa = new SmallA();
            SmallB sb = new SmallB();
            SmallC sc = new SmallC();
            SmallD sd = new SmallD();
            checksum = checksum + sa.a + sb.b + sc.c + sd.d;
        }}
    }}
    int run(int reps, int len) {{
        createIntArrays(reps, len);
        createLongArrays(reps, len);
        createFloatArrays(reps, len);
        createObjectArrays(reps, len);
        createCustomObjects(reps);
        createSmall(reps);
        return checksum;
    }}
}}

class CreateMain {{
    static void main(String[] args) {{
        CreateBench bench = new CreateBench();
        int sum = bench.run({reps}, {len});
        Sys.println("create checksum=" + sum);
    }}
}}
"""


def source(size: str = "test") -> str:
    reps, length = _SIZES[size]
    return _TEMPLATE.format(reps=reps, len=length)
