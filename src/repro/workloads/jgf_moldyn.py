"""JGFMolDynBench — Lennard-Jones molecular dynamics.

The Java Grande MolDyn kernel: N particles, O(N^2) pairwise force
evaluation, velocity-Verlet-style update, a few timesteps; energies reported
as the checksum.  Float (binary64) arithmetic throughout."""

from __future__ import annotations

_SIZES = {"test": (16, 2), "bench": (90, 5), "large": (216, 8)}

_TEMPLATE = """
class ParticleSystem {{
    float[] x;
    float[] y;
    float[] z;
    float[] vx;
    float[] vy;
    float[] vz;
    float[] fx;
    float[] fy;
    float[] fz;
    int n;
    float epot;
    float ekin;

    ParticleSystem(int n, long seed) {{
        this.n = n;
        x = new float[n];  y = new float[n];  z = new float[n];
        vx = new float[n]; vy = new float[n]; vz = new float[n];
        fx = new float[n]; fy = new float[n]; fz = new float[n];
        Random rng = new Random(seed);
        int i;
        for (i = 0; i < n; i++) {{
            x[i] = rng.nextFloat() * 10.0;
            y[i] = rng.nextFloat() * 10.0;
            z[i] = rng.nextFloat() * 10.0;
            vx[i] = rng.nextFloat() - 0.5;
            vy[i] = rng.nextFloat() - 0.5;
            vz[i] = rng.nextFloat() - 0.5;
        }}
    }}

    void computeForces() {{
        int i;
        for (i = 0; i < n; i++) {{
            fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0;
        }}
        epot = 0.0;
        int a;
        for (a = 0; a < n - 1; a++) {{
            int b;
            for (b = a + 1; b < n; b++) {{
                float dx = x[a] - x[b];
                float dy = y[a] - y[b];
                float dz = z[a] - z[b];
                float r2 = dx * dx + dy * dy + dz * dz + 0.1;
                float r6 = r2 * r2 * r2;
                float force = (12.0 / (r6 * r6 * r2)) - (6.0 / (r6 * r2));
                epot = epot + (1.0 / (r6 * r6)) - (1.0 / r6);
                fx[a] = fx[a] + dx * force;
                fy[a] = fy[a] + dy * force;
                fz[a] = fz[a] + dz * force;
                fx[b] = fx[b] - dx * force;
                fy[b] = fy[b] - dy * force;
                fz[b] = fz[b] - dz * force;
            }}
        }}
    }}

    void advance(float dt) {{
        ekin = 0.0;
        int i;
        for (i = 0; i < n; i++) {{
            vx[i] = vx[i] + fx[i] * dt;
            vy[i] = vy[i] + fy[i] * dt;
            vz[i] = vz[i] + fz[i] * dt;
            x[i] = x[i] + vx[i] * dt;
            y[i] = y[i] + vy[i] * dt;
            z[i] = z[i] + vz[i] * dt;
            ekin = ekin + 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
        }}
    }}

    float step(float dt) {{
        computeForces();
        advance(dt);
        return epot + ekin;
    }}
}}

class MolDynMain {{
    static void main(String[] args) {{
        ParticleSystem system = new ParticleSystem({n}, 99L);
        float energy = 0.0;
        int t;
        for (t = 0; t < {steps}; t++) {{
            energy = system.step(0.002);
        }}
        int check = (int) (energy * 1000.0);
        Sys.println("moldyn check=" + check);
    }}
}}
"""


def source(size: str = "test") -> str:
    n, steps = _SIZES[size]
    return _TEMPLATE.format(n=n, steps=steps)
