"""Quad listing in the exact format of Figure 5 of the paper::

    BB0 (ENTRY) (in: <none>, out: BB2)
    BB2 (in: BB0 (ENTRY), out: BB3, BB4)
    1 MOVE_I R1 int, IConst: 4
    2 IFCMP_I IConst: 4, IConst: 2, LE, BB4
    ...
    BB1 (EXIT) (in: BB4, out: <none>)
"""

from __future__ import annotations

from typing import List

from repro.quad.quads import QuadMethod


def _block_name(qm: QuadMethod, bid: int) -> str:
    if bid == 0:
        return "BB0 (ENTRY)"
    if bid == 1:
        return "BB1 (EXIT)"
    return f"BB{bid}"


def format_method(qm: QuadMethod) -> str:
    lines: List[str] = []
    counter = 1
    for block in qm.block_order():
        ins = ", ".join(_block_name(qm, p) for p in sorted(block.preds)) or "<none>"
        outs = ", ".join(_block_name(qm, s) for s in sorted(block.succs)) or "<none>"
        lines.append(f"{_block_name(qm, block.bid)} (in: {ins}, out: {outs})")
        for quad in block.quads:
            lines.append(f"{counter} {quad!r}")
            counter += 1
    return "\n".join(lines)
