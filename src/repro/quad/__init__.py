"""Quad IR — the register-style quadruple representation (Joeq stand-in).

Bytecode is lifted to quads by abstract interpretation of the operand stack
(:mod:`repro.quad.builder`), organized into basic blocks with an explicit
CFG (:mod:`repro.quad.cfg`), and printable in the exact format of Figure 5
of the paper (:mod:`repro.quad.printer`).
"""

from repro.quad.builder import build_quads
from repro.quad.cfg import QuadCFG, dominators, natural_loops
from repro.quad.printer import format_method
from repro.quad.quads import BasicBlock, Const, Quad, QuadMethod, Reg

__all__ = [
    "build_quads",
    "QuadCFG",
    "dominators",
    "natural_loops",
    "format_method",
    "Quad",
    "QuadMethod",
    "BasicBlock",
    "Reg",
    "Const",
]
