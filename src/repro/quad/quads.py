"""Quad instruction and basic-block definitions.

A quad is ``OP_t dst, op1, op2, ...`` where ``t`` is the type suffix
(``I``/``J``→shown as ``L`` in names/``F``/``A``).  Operands are registers
(:class:`Reg`) or constants (:class:`Const`).  Naming follows Figure 5 of
the paper (``MOVE_I R1 int, IConst: 4``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

_TYPE_NAME = {"I": "int", "J": "long", "F": "float", "A": "ref", "V": "void"}
_SUFFIX = {"I": "I", "J": "L", "F": "F", "A": "A", "V": ""}


class Reg:
    """A virtual register with a type char; interned per (index, char)."""

    __slots__ = ("index", "ty")

    def __init__(self, index: int, ty: str) -> None:
        self.index = index
        self.ty = ty

    @property
    def name(self) -> str:
        return f"R{self.index}"

    def __repr__(self) -> str:
        return f"{self.name} {_TYPE_NAME.get(self.ty, self.ty)}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("reg", self.index))


class Const:
    """A constant operand (``IConst: 4`` in Figure 5)."""

    __slots__ = ("value", "ty")

    def __init__(self, value, ty: str) -> None:
        self.value = value
        self.ty = ty

    def __repr__(self) -> str:
        prefix = {"I": "IConst", "J": "LConst", "F": "FConst", "S": "SConst",
                  "N": "NullConst", "A": "AConst"}.get(self.ty, "Const")
        if self.ty == "N":
            return "NullConst"
        if self.ty == "S":
            return f'SConst: "{self.value}"'
        return f"{prefix}: {self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and other.value == self.value
            and other.ty == self.ty
        )

    def __hash__(self) -> int:
        return hash(("const", self.ty, self.value))


Operand = Union[Reg, Const]


class Quad:
    """One quadruple.

    ``op`` is the base operator (``MOVE``, ``ADD``, ``IFCMP``, ``INVOKE``...),
    ``ty`` the type suffix char, ``dst`` an optional destination register,
    ``srcs`` the operand list, and ``extra`` operator-specific data
    (condition code + target block for IFCMP, (class, member) for field and
    invoke quads, class name for NEW...).
    """

    __slots__ = ("op", "ty", "dst", "srcs", "extra", "line")

    def __init__(
        self,
        op: str,
        ty: str = "V",
        dst: Optional[Reg] = None,
        srcs: Sequence[Operand] = (),
        extra: Tuple = (),
        line: int = 0,
    ) -> None:
        self.op = op
        self.ty = ty
        self.dst = dst
        self.srcs = list(srcs)
        self.extra = tuple(extra)
        self.line = line

    @property
    def mnemonic(self) -> str:
        suffix = _SUFFIX.get(self.ty, self.ty)
        return f"{self.op}_{suffix}" if suffix else self.op

    def operands_repr(self) -> str:
        parts: List[str] = []
        if self.dst is not None:
            parts.append(repr(self.dst))
        parts.extend(repr(s) for s in self.srcs)
        if self.op == "IFCMP":
            cond, target = self.extra
            parts.append(cond)
            parts.append(f"BB{target}")
        elif self.op == "GOTO":
            parts.append(f"BB{self.extra[0]}")
        elif self.op in ("GETFIELD", "PUTFIELD", "GETSTATIC", "PUTSTATIC"):
            parts.append(".".join(self.extra))
        elif self.op.startswith("INVOKE"):
            parts.append(".".join(self.extra[:2]))
        elif self.op in ("NEW", "CHECKCAST", "INSTANCEOF", "NEWARRAY"):
            parts.append(str(self.extra[0]))
        return ", ".join(parts)

    def __repr__(self) -> str:
        ops = self.operands_repr()
        return f"{self.mnemonic} {ops}" if ops else self.mnemonic


class BasicBlock:
    """A straight-line run of quads.  ``bid`` 0 is ENTRY, 1 is EXIT."""

    __slots__ = ("bid", "quads", "preds", "succs")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.quads: List[Quad] = []
        self.preds: List[int] = []
        self.succs: List[int] = []

    @property
    def label(self) -> str:
        if self.bid == 0:
            return "BB0 (ENTRY)"
        if self.bid == 1:
            return "BB1 (EXIT)"
        return f"BB{self.bid}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.label}: {len(self.quads)} quads>"


class QuadMethod:
    """All blocks of one method in numbering order, plus register info."""

    __slots__ = ("name", "class_name", "blocks", "num_regs", "param_regs")

    def __init__(self, class_name: str, name: str) -> None:
        self.class_name = class_name
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self.num_regs = 0
        self.param_regs: List[Reg] = []

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.name}"

    def block_order(self) -> List[BasicBlock]:
        """ENTRY, body blocks in index order, EXIT last (Figure 5's order)."""
        body = sorted(b for b in self.blocks if b >= 2)
        order = [0] + body + [1]
        return [self.blocks[b] for b in order if b in self.blocks]

    def all_quads(self) -> List[Quad]:
        out: List[Quad] = []
        for block in self.block_order():
            out.extend(block.quads)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<QuadMethod {self.qualified} ({len(self.blocks)} blocks)>"
