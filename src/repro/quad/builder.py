"""Bytecode → quad lifting by abstract interpretation of the operand stack.

The scheme is the classic one (also used by Joeq): operand-stack slots become
canonical registers (stack slot *i* of a method with *L* locals is register
``R(L+i+1)``; local slot *s* is ``R(s+1)``), and each bytecode instruction
becomes at most one quad.  Constants are propagated into operand positions —
including through locals, via a small forward dataflow — which is why the
Figure 5 listing shows ``IFCMP_I IConst: 4, IConst: 2, LE, BB4`` for
``if (b > 2)`` after ``b = 4``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import CompileError
from repro.bytecode import opcodes as op
from repro.bytecode.model import BMethod, Instr
from repro.lang.symbols import ClassTable, DEPENDENT_OBJECT
from repro.lang.types import BOOLEAN, FLOAT, INT, LONG, VOID, Type
from repro.quad.quads import BasicBlock, Const, Quad, QuadMethod, Reg

_AbsVal = Union[Reg, Const]


def _tychar(ty: Type) -> str:
    if ty in (INT, BOOLEAN):
        return "I"
    if ty is LONG:
        return "J"
    if ty is FLOAT:
        return "F"
    if ty is VOID:
        return "V"
    return "A"


def _invoke_ret_char(table: ClassTable, ins: Instr) -> str:
    cls, name = ins.a, ins.b
    if cls == DEPENDENT_OBJECT and name == "create":
        return "A"
    mi = table.resolve_method(cls, name)
    if mi is None:
        raise CompileError(f"cannot resolve {cls}.{name} for quad building")
    if mi.is_ctor:
        return "V"
    return _tychar(mi.ret)


def stack_effect(ins: Instr, table: ClassTable) -> Tuple[int, int]:
    """(pops, pushes) of one instruction."""
    o = ins.op
    if o in (op.LDC, op.ACONST_NULL, op.NEW, op.GETSTATIC) or o in op.LOADS:
        return (0, 1)
    if o in op.STORES or o in (op.POP, op.PUTSTATIC, op.IFTRUE, op.IFFALSE):
        return (1, 0)
    if o == op.DUP:
        return (1, 2)
    if o == op.SWAP:
        return (2, 2)
    if o in op.BINOPS:
        return (2, 1)
    if o in op.NEGOPS or o in op.CONVERSIONS or o in (
        op.NEWARRAY,
        op.ARRAYLENGTH,
        op.CHECKCAST,
        op.INSTANCEOF,
        op.GETFIELD,
    ):
        return (1, 1)
    if o in op.CMP_BRANCHES or o == op.PUTFIELD:
        return (2, 0)
    if o == op.GOTO or o == op.RETURN:
        return (0, 0)
    if o in op.RETURNS:
        return (1, 0)
    if o == op.XALOAD:
        return (2, 1)
    if o == op.XASTORE:
        return (3, 0)
    if o == op.PACK:
        return (ins.a, 1)
    if o in op.INVOKES:
        nargs = ins.c
        pops = nargs + (0 if o == op.INVOKESTATIC else 1)
        if ins.a == DEPENDENT_OBJECT and ins.b == "create":
            pops = nargs  # static factory
        pushes = 0 if _invoke_ret_char(table, ins) == "V" else 1
        return (pops, pushes)
    raise CompileError(f"no stack effect for {o}")


_QUAD_BASE = {
    "ADD": "ADD", "SUB": "SUB", "MUL": "MUL", "DIV": "DIV", "REM": "REM",
    "AND": "AND", "OR": "OR", "XOR": "XOR", "SHL": "SHL", "SHR": "SHR",
    "USHR": "USHR",
}


class _Builder:
    def __init__(self, bmethod: BMethod, table: ClassTable) -> None:
        self.bm = bmethod
        self.table = table
        self.flat = bmethod.flat()
        self.qm = QuadMethod(bmethod.class_name, bmethod.name)
        self.nlocals = max(
            bmethod.max_locals, (0 if bmethod.is_static else 1) + bmethod.nargs
        )

    # ---------------------------------------------------------------- layout
    def _find_leaders(self) -> List[int]:
        leaders: Set[int] = {0}
        for i, ins in enumerate(self.flat):
            if ins.op in op.BRANCHES:
                target = ins.b if ins.op in op.CMP_BRANCHES else ins.a
                leaders.add(target)
                leaders.add(i + 1)
            elif ins.op in op.RETURNS:
                leaders.add(i + 1)
        return sorted(x for x in leaders if x < len(self.flat))

    def build(self) -> QuadMethod:
        if len(self.flat) == 0:
            raise CompileError(f"{self.bm.qualified}: empty method")
        leaders = self._find_leaders()
        # block id assignment: ENTRY=0, EXIT=1, body blocks 2.. in code order
        bid_of_leader: Dict[int, int] = {
            leader: i + 2 for i, leader in enumerate(leaders)
        }
        block_end: Dict[int, int] = {}
        for i, leader in enumerate(leaders):
            block_end[leader] = leaders[i + 1] if i + 1 < len(leaders) else len(self.flat)

        def bid_at(index: int) -> int:
            pos = bisect_right(leaders, index) - 1
            return bid_of_leader[leaders[pos]]

        # --- successor computation on bytecode ranges
        succs: Dict[int, List[int]] = {}
        for leader in leaders:
            bid = bid_of_leader[leader]
            end = block_end[leader]
            last = self.flat[end - 1]
            out: List[int] = []
            if last.op == op.GOTO:
                out = [bid_at(last.a)]
            elif last.op in op.CMP_BRANCHES:
                out = [bid_at(last.b)]
                if end < len(self.flat):
                    out.append(bid_at(end))
            elif last.op in op.BOOL_BRANCHES:
                out = [bid_at(last.a)]
                if end < len(self.flat):
                    out.append(bid_at(end))
            elif last.op in op.RETURNS:
                out = [1]
            else:
                if end < len(self.flat):
                    out = [bid_at(end)]
                else:
                    out = [1]
            succs[bid] = out

        # --- entry stack depth per block (worklist)
        depth_in: Dict[int, int] = {bid_of_leader[0]: 0}
        max_depth = 0
        work = [0]
        seen = {0}
        while work:
            leader = work.pop()
            bid = bid_of_leader[leader]
            depth = depth_in[bid]
            for i in range(leader, block_end[leader]):
                pops, pushes = stack_effect(self.flat[i], self.table)
                depth -= pops
                if depth < 0:
                    raise CompileError(
                        f"{self.bm.qualified}: stack underflow at {i}"
                    )
                depth += pushes
                max_depth = max(max_depth, depth)
            for s in succs[bid]:
                if s == 1:
                    continue
                s_leader = leaders[s - 2]
                if s in depth_in:
                    if depth_in[s] != depth:
                        raise CompileError(
                            f"{self.bm.qualified}: inconsistent stack depth "
                            f"at BB{s}"
                        )
                else:
                    depth_in[s] = depth
                if s_leader not in seen:
                    seen.add(s_leader)
                    work.append(s_leader)

        self._stack_base = self.nlocals  # stack slot i -> reg index base+i+1
        self.qm.num_regs = self.nlocals + max_depth

        # --- local-constant dataflow (meet over preds; None map = unknown yet)
        preds: Dict[int, List[int]] = {b: [] for b in succs}
        preds[1] = []
        for b, outs in succs.items():
            for s in outs:
                preds.setdefault(s, []).append(b)
        entry_bid = bid_of_leader[0]
        const_in: Dict[int, Optional[Dict[int, Const]]] = {
            bid_of_leader[l]: None for l in leaders
        }
        const_in[entry_bid] = {}
        const_out: Dict[int, Dict[int, Const]] = {}
        changed = True
        while changed:
            changed = False
            for leader in leaders:
                bid = bid_of_leader[leader]
                if bid != entry_bid:
                    merged: Optional[Dict[int, Const]] = None
                    for p in preds.get(bid, []):
                        pout = const_out.get(p)
                        if pout is None:
                            continue
                        if merged is None:
                            merged = dict(pout)
                        else:
                            merged = {
                                k: v
                                for k, v in merged.items()
                                if pout.get(k) == v
                            }
                    if merged is None:
                        continue
                    if const_in[bid] != merged:
                        const_in[bid] = merged
                        changed = True
                cmap = dict(const_in[bid] or {})
                for i in range(leader, block_end[leader]):
                    ins = self.flat[i]
                    if ins.op in op.STORES:
                        # a store of a constant makes the local constant; any
                        # other store kills (approximation: we do not track
                        # the abstract stack here, so only LDC;STORE pairs
                        # count — enough for the Figure 5 pattern)
                        if i > 0 and self.flat[i - 1].op == op.LDC:
                            cmap[ins.a] = Const(
                                self.flat[i - 1].a, self.flat[i - 1].b
                            )
                        else:
                            cmap.pop(ins.a, None)
                if const_out.get(bid) != cmap:
                    const_out[bid] = cmap
                    changed = True
        self._const_in = {b: (m or {}) for b, m in const_in.items()}

        # --- create blocks
        entry = BasicBlock(0)
        exit_block = BasicBlock(1)
        self.qm.blocks[0] = entry
        self.qm.blocks[1] = exit_block
        for leader in leaders:
            self.qm.blocks[bid_of_leader[leader]] = BasicBlock(bid_of_leader[leader])

        edges = [(0, entry_bid)]
        for b, outs in succs.items():
            for s in outs:
                edges.append((b, s))
        for a, b in edges:
            if b not in self.qm.blocks:
                continue
            if b not in self.qm.blocks[a].succs:
                self.qm.blocks[a].succs.append(b)
            if a not in self.qm.blocks[b].preds:
                self.qm.blocks[b].preds.append(a)

        # --- translate each reachable block
        for leader in leaders:
            bid = bid_of_leader[leader]
            if bid not in depth_in:
                continue  # unreachable
            self._translate_block(
                bid, leader, block_end[leader], depth_in[bid], bid_at
            )

        # param registers (for codegen)
        self.qm.param_regs = [
            Reg(s + 1, "A") for s in range(0 if self.bm.is_static else 1)
        ] + [
            Reg((0 if self.bm.is_static else 1) + i + 1, _tychar(t))
            for i, t in enumerate(self.bm.param_types)
        ]
        return self.qm

    # ---------------------------------------------------------------- helpers
    def _local_reg(self, slot: int, ty: str) -> Reg:
        return Reg(slot + 1, ty)

    def _stack_reg(self, pos: int, ty: str) -> Reg:
        return Reg(self._stack_base + pos + 1, ty)

    # ---------------------------------------------------------------- translate
    def _translate_block(self, bid, start, end, entry_depth, bid_at) -> None:
        block = self.qm.blocks[bid]
        stack: List[_AbsVal] = [self._stack_reg(i, "A") for i in range(entry_depth)]
        cmap: Dict[int, Const] = dict(self._const_in.get(bid, {}))

        def emit(quad: Quad) -> None:
            block.quads.append(quad)

        def result_reg(ty: str) -> Reg:
            return self._stack_reg(len(stack), ty)

        for i in range(start, end):
            ins = self.flat[i]
            o = ins.op
            if o == op.LDC:
                stack.append(Const(ins.a, ins.b))
            elif o == op.ACONST_NULL:
                stack.append(Const(None, "N"))
            elif o in op.LOADS:
                slot = ins.a
                ch = {"I": "I", "L": "J", "F": "F", "A": "A"}[o[0]]
                known = cmap.get(slot)
                stack.append(known if known is not None else self._local_reg(slot, ch))
            elif o in op.STORES:
                slot = ins.a
                ch = {"I": "I", "L": "J", "F": "F", "A": "A"}[o[0]]
                value = stack.pop()
                # guard: materialize any live alias of this local first
                target = self._local_reg(slot, ch)
                for pos, v in enumerate(stack):
                    if isinstance(v, Reg) and v == target:
                        repl = self._stack_reg(pos, v.ty)
                        emit(Quad("MOVE", v.ty, repl, [v], line=ins.line))
                        stack[pos] = repl
                emit(Quad("MOVE", ch, target, [value], line=ins.line))
                if isinstance(value, Const):
                    cmap[slot] = value
                else:
                    cmap.pop(slot, None)
            elif o == op.DUP:
                stack.append(stack[-1])
            elif o == op.POP:
                stack.pop()
            elif o == op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif o in op.BINOPS:
                b = stack.pop()
                a = stack.pop()
                ty = op.RESULT_TYPE[o]
                base = _QUAD_BASE[o[1:]]
                dst = result_reg(ty)
                emit(Quad(base, ty, dst, [a, b], line=ins.line))
                stack.append(dst)
            elif o in op.NEGOPS:
                a = stack.pop()
                ty = op.RESULT_TYPE[o]
                dst = result_reg(ty)
                emit(Quad("NEG", ty, dst, [a], line=ins.line))
                stack.append(dst)
            elif o in op.CONVERSIONS:
                a = stack.pop()
                ty = op.RESULT_TYPE[o]
                dst = result_reg(ty)
                emit(Quad(o, "V", dst, [a], line=ins.line))
                stack.append(dst)
            elif o in op.CMP_BRANCHES:
                b = stack.pop()
                a = stack.pop()
                ty = {"IF_ICMP": "I", "IF_LCMP": "J", "IF_FCMP": "F", "IF_ACMP": "A"}[o]
                emit(
                    Quad("IFCMP", ty, None, [a, b],
                         extra=(ins.a, bid_at(ins.b)), line=ins.line)
                )
            elif o in op.BOOL_BRANCHES:
                a = stack.pop()
                cond = "NE" if o == op.IFTRUE else "EQ"
                emit(
                    Quad("IFCMP", "I", None, [a, Const(0, "I")],
                         extra=(cond, bid_at(ins.a)), line=ins.line)
                )
            elif o == op.GOTO:
                emit(Quad("GOTO", "V", None, [], extra=(bid_at(ins.a),), line=ins.line))
            elif o == op.NEW:
                dst = result_reg("A")
                emit(Quad("NEW", "A", dst, [], extra=(ins.a,), line=ins.line))
                stack.append(dst)
            elif o == op.NEWARRAY:
                length = stack.pop()
                dst = result_reg("A")
                emit(Quad("NEWARRAY", "A", dst, [length], extra=(ins.a,), line=ins.line))
                stack.append(dst)
            elif o == op.ARRAYLENGTH:
                a = stack.pop()
                dst = result_reg("I")
                emit(Quad("ARRAYLENGTH", "I", dst, [a], line=ins.line))
                stack.append(dst)
            elif o == op.XALOAD:
                idx = stack.pop()
                arr = stack.pop()
                dst = result_reg(ins.a)
                emit(Quad("ALOAD", ins.a, dst, [arr, idx], line=ins.line))
                stack.append(dst)
            elif o == op.XASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                emit(Quad("ASTORE", ins.a, None, [arr, idx, value], line=ins.line))
            elif o == op.GETFIELD:
                obj = stack.pop()
                fi = self.table.resolve_field(ins.a, ins.b)
                ch = _tychar(fi.ty) if fi is not None else "A"
                dst = result_reg(ch)
                emit(Quad("GETFIELD", ch, dst, [obj], extra=(ins.a, ins.b), line=ins.line))
                stack.append(dst)
            elif o == op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                fi = self.table.resolve_field(ins.a, ins.b)
                ch = _tychar(fi.ty) if fi is not None else "A"
                emit(Quad("PUTFIELD", ch, None, [obj, value], extra=(ins.a, ins.b), line=ins.line))
            elif o == op.GETSTATIC:
                fi = self.table.resolve_field(ins.a, ins.b)
                ch = _tychar(fi.ty) if fi is not None else "A"
                dst = result_reg(ch)
                emit(Quad("GETSTATIC", ch, dst, [], extra=(ins.a, ins.b), line=ins.line))
                stack.append(dst)
            elif o == op.PUTSTATIC:
                value = stack.pop()
                fi = self.table.resolve_field(ins.a, ins.b)
                ch = _tychar(fi.ty) if fi is not None else "A"
                emit(Quad("PUTSTATIC", ch, None, [value], extra=(ins.a, ins.b), line=ins.line))
            elif o in op.INVOKES:
                nargs = ins.c
                args = stack[-nargs:] if nargs else []
                if nargs:
                    del stack[-nargs:]
                srcs: List[_AbsVal] = list(args)
                static_like = ins.op == op.INVOKESTATIC or (
                    ins.a == DEPENDENT_OBJECT and ins.b == "create"
                )
                if not static_like:
                    srcs.insert(0, stack.pop())
                ret = _invoke_ret_char(self.table, ins)
                dst = None
                if ret != "V":
                    dst = result_reg(ret)
                emit(Quad(ins.op, ret, dst, srcs, extra=(ins.a, ins.b), line=ins.line))
                if dst is not None:
                    stack.append(dst)
            elif o == op.CHECKCAST:
                a = stack.pop()
                dst = result_reg("A")
                emit(Quad("CHECKCAST", "A", dst, [a], extra=(ins.a,), line=ins.line))
                stack.append(dst)
            elif o == op.INSTANCEOF:
                a = stack.pop()
                dst = result_reg("I")
                emit(Quad("INSTANCEOF", "I", dst, [a], extra=(ins.a,), line=ins.line))
                stack.append(dst)
            elif o == op.RETURN:
                emit(Quad("RETURN", "V", None, [], line=ins.line))
            elif o in op.RETURNS:
                value = stack.pop()
                ch = {"I": "I", "L": "J", "F": "F", "A": "A"}[o[0]]
                emit(Quad("RETURN", ch, None, [value], line=ins.line))
            elif o == op.PACK:
                n = ins.a
                args = stack[-n:] if n else []
                if n:
                    del stack[-n:]
                dst = result_reg("A")
                emit(Quad("PACK", "A", dst, list(args), line=ins.line))
                stack.append(dst)
            else:  # pragma: no cover
                raise CompileError(f"quad builder: unknown opcode {o}")

        # materialize any values left on the stack into canonical registers;
        # the moves must precede the block's terminating branch (if any)
        moves: List[Quad] = []
        for pos, v in enumerate(stack):
            want_idx = self._stack_base + pos + 1
            if isinstance(v, Const):
                dst = self._stack_reg(pos, v.ty if v.ty in "IJF" else "A")
                moves.append(Quad("MOVE", dst.ty, dst, [v]))
            elif v.index != want_idx:
                dst = self._stack_reg(pos, v.ty)
                moves.append(Quad("MOVE", v.ty, dst, [v]))
        if moves:
            insert_at = len(block.quads)
            if block.quads and block.quads[-1].op in ("GOTO", "IFCMP"):
                insert_at -= 1
            block.quads[insert_at:insert_at] = moves


def build_quads(bmethod: BMethod, table: ClassTable) -> QuadMethod:
    """Lift ``bmethod`` to the quad IR."""
    return _Builder(bmethod, table).build()
