"""CFG algorithms over quad methods: dominators, natural loops.

Loop membership feeds two consumers:

* the object-set analysis (paper §2: allocation sites inside control
  structures become ``*`` summary instances), and
* the heuristic resource model (paper §3: "objects created inside the loops
  can be considered heavier").
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.quad.quads import QuadMethod


class QuadCFG:
    """Light adapter exposing pred/succ maps of a :class:`QuadMethod`."""

    def __init__(self, qm: QuadMethod) -> None:
        self.qm = qm
        self.succs: Dict[int, List[int]] = {
            b.bid: list(b.succs) for b in qm.blocks.values()
        }
        self.preds: Dict[int, List[int]] = {
            b.bid: list(b.preds) for b in qm.blocks.values()
        }
        self.entry = 0

    def reachable(self) -> Set[int]:
        seen = {self.entry}
        work = [self.entry]
        while work:
            b = work.pop()
            for s in self.succs.get(b, []):
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen


def dominators(cfg: QuadCFG) -> Dict[int, Set[int]]:
    """Classic iterative dominator computation; ``dom[b]`` is the set of
    blocks dominating ``b`` (including itself).  Unreachable blocks map to
    the full set."""
    nodes = sorted(cfg.reachable())
    full = set(nodes)
    dom: Dict[int, Set[int]] = {b: set(full) for b in nodes}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for b in nodes:
            if b == cfg.entry:
                continue
            preds = [p for p in cfg.preds.get(b, []) if p in dom]
            if not preds:
                continue
            new = set(full)
            for p in preds:
                new &= dom[p]
            new.add(b)
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def natural_loops(cfg: QuadCFG) -> List[Tuple[int, Set[int]]]:
    """All natural loops as ``(header, body_block_set)`` pairs.  A back edge
    is an edge ``t -> h`` with ``h`` dominating ``t``."""
    dom = dominators(cfg)
    loops: List[Tuple[int, Set[int]]] = []
    for t, outs in cfg.succs.items():
        if t not in dom:
            continue
        for h in outs:
            if h in dom.get(t, set()):
                body = {h, t}
                work = [t]
                while work:
                    b = work.pop()
                    if b == h:
                        continue
                    for p in cfg.preds.get(b, []):
                        if p not in body and p in dom:
                            body.add(p)
                            work.append(p)
                loops.append((h, body))
    return loops


def blocks_in_loops(qm: QuadMethod) -> Set[int]:
    """Union of all natural-loop bodies of ``qm``."""
    cfg = QuadCFG(qm)
    blocks: Set[int] = set()
    for _, body in natural_loops(cfg):
        blocks |= body
    return blocks


def loop_depth(qm: QuadMethod) -> Dict[int, int]:
    """Nesting depth per block (0 = not in any loop)."""
    cfg = QuadCFG(qm)
    depth: Dict[int, int] = {b: 0 for b in qm.blocks}
    for _, body in natural_loops(cfg):
        for b in body:
            depth[b] = depth.get(b, 0) + 1
    return depth
